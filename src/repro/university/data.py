"""The paper's extensional data.

:func:`build_paper_database` loads a base database whose
Teacher/Section/Course portion reproduces the extensional diagram of
Figure 3.1b exactly, extended with the departments, students, transcripts,
TAs, faculty and advising relationships that rules R1-R6 and queries
3.1-5.1 exercise.  The returned :class:`PaperData` exposes every named
object under the paper's labels (``t1``, ``s2``, ``c1``, ...).

:func:`build_sdb` constructs the subdatabase SDB of Figure 3.1 — intension
(Teacher, Section, Course with the teaches/course associations) and the
seven extensional patterns::

    (t1, s2, c1)   (t2, s3, c1)   (t2, s3, c2)      type (Teacher, Section, Course)
    (t3, s4, -)                                     type (Teacher, Section)
    (-, s5, c4)                                     type (Section, Course)
    (t4, -, -)                                      type (Teacher)
    (-, -, c3)                                      type (Course)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.model.database import Database
from repro.model.objects import Entity
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.university.schema import build_university_schema


@dataclass
class PaperData:
    """The paper database plus its named objects."""

    db: Database
    objects: Dict[str, Entity] = field(default_factory=dict)

    def __getitem__(self, label: str) -> Entity:
        return self.objects[label]

    def oid(self, label: str):
        return self.objects[label].oid


def build_paper_database() -> PaperData:
    """Load the base database described in the module docstring."""
    schema = build_university_schema()
    db = Database(schema, name="University")
    data = PaperData(db)
    objs = data.objects

    def add(cls: str, label: str, **attrs) -> Entity:
        entity = db.insert(cls, label, **attrs)
        objs[label] = entity
        return entity

    # ------------------------------------------------------------------
    # Departments
    # ------------------------------------------------------------------
    add("Department", "d1", name="CIS", college="Engineering")
    add("Department", "d2", name="Math", college="Liberal Arts")
    add("Department", "d3", name="EE", college="Engineering")

    # ------------------------------------------------------------------
    # Courses (c# values chosen so Query 3.2's 6000-level filter and rule
    # R5's "< 5000" filter both have matches and non-matches)
    # ------------------------------------------------------------------
    add("Course", "c1", **{"c#": 6100, "title": "Database Systems",
                           "credit_hours": 3})
    add("Course", "c2", **{"c#": 3000, "title": "Data Structures",
                           "credit_hours": 3})
    add("Course", "c3", **{"c#": 4000, "title": "Calculus",
                           "credit_hours": 4})
    add("Course", "c4", **{"c#": 6700, "title": "Expert Systems",
                           "credit_hours": 3})
    db.associate(objs["c1"], "department", objs["d1"])
    db.associate(objs["c2"], "department", objs["d1"])
    db.associate(objs["c3"], "department", objs["d2"])
    db.associate(objs["c4"], "department", objs["d1"])
    # Prereq self-association: Expert Systems <- Database Systems <- Data
    # Structures (a chain the transitive-closure examples traverse).
    db.associate(objs["c4"], "prereq", objs["c1"])
    db.associate(objs["c1"], "prereq", objs["c2"])

    # ------------------------------------------------------------------
    # Sections — Figure 3.1b plus s6/s7 for the Grad-teaching-grad loop
    # ------------------------------------------------------------------
    add("Section", "s2", **{"section#": 1, "textbook": "Ullman"})
    add("Section", "s3", **{"section#": 2, "textbook": "Date"})
    add("Section", "s4", **{"section#": 3, "textbook": "Knuth"})
    add("Section", "s5", **{"section#": 4, "textbook": "Korth"})
    add("Section", "s6", **{"section#": 5, "textbook": "Aho"})
    add("Section", "s7", **{"section#": 6, "textbook": "Sedgewick"})
    # Figure 3.1b course links: s3 relates to two courses (the waived 1:N
    # constraint), s4 to none.
    db.associate(objs["s2"], "course", objs["c1"])
    db.associate(objs["s3"], "course", objs["c1"])
    db.associate(objs["s3"], "course", objs["c2"])
    db.associate(objs["s5"], "course", objs["c4"])
    db.associate(objs["s6"], "course", objs["c2"])
    db.associate(objs["s7"], "course", objs["c2"])

    # ------------------------------------------------------------------
    # Teachers — Figure 3.1b: t4 teaches nothing
    # ------------------------------------------------------------------
    add("Teacher", "t1", **{"SS#": "100-00-0001", "name": "Smith",
                            "degree": "PhD"})
    add("Teacher", "t2", **{"SS#": "100-00-0002", "name": "Jones",
                            "degree": "PhD"})
    add("Teacher", "t3", **{"SS#": "100-00-0003", "name": "Chen",
                            "degree": "MS"})
    add("Teacher", "t4", **{"SS#": "100-00-0004", "name": "Silva",
                            "degree": "PhD"})
    db.associate(objs["t1"], "teaches", objs["s2"])
    db.associate(objs["t2"], "teaches", objs["s3"])
    db.associate(objs["t3"], "teaches", objs["s4"])

    # ------------------------------------------------------------------
    # Faculty and graduate students
    # ------------------------------------------------------------------
    add("Faculty", "f1", **{"SS#": "200-00-0001", "name": "Su",
                            "degree": "PhD", "rank": "Professor"})
    add("Faculty", "f2", **{"SS#": "200-00-0002", "name": "Lam",
                            "degree": "PhD",
                            "rank": "Associate Professor"})
    add("Grad", "g1", **{"SS#": "300-00-0001", "name": "Adams",
                         "GPA": 3.6})
    add("Grad", "g2", **{"SS#": "300-00-0002", "name": "Baker",
                         "GPA": 2.9})
    add("TA", "ta1", **{"SS#": "300-00-0003", "name": "Quinn",
                        "GPA": 3.2, "degree": "BS"})
    add("TA", "ta2", **{"SS#": "300-00-0004", "name": "Reyes",
                        "GPA": 3.8, "degree": "BS"})
    add("RA", "ra1", **{"SS#": "300-00-0005", "name": "Ivanov",
                        "GPA": 3.4, "project": "OSAM*"})
    add("Undergrad", "u1", **{"SS#": "400-00-0001", "name": "Young",
                              "GPA": 3.1, "year": 2})
    add("Undergrad", "u2", **{"SS#": "400-00-0002", "name": "Zhou",
                              "GPA": 3.9, "year": 3})
    for grad in ("g1", "g2", "ta1", "ta2", "ra1"):
        db.associate(objs[grad], "Major", objs["d1"])

    # Both TAs teach a Section of the Database Systems course (rule R4),
    # and each additionally teaches a Data Structures section in which
    # other grads are enrolled (rule R6's Grad-teaching-grad hierarchy:
    # ta1 -> {ta2, g2} via s6, ta2 -> {g1} via s7 and s3).
    db.associate(objs["ta1"], "teaches", objs["s3"])
    db.associate(objs["ta2"], "teaches", objs["s3"])
    db.associate(objs["ta1"], "teaches", objs["s6"])
    db.associate(objs["ta2"], "teaches", objs["s7"])
    db.associate(objs["g1"], "enrolled", objs["s3"])
    db.associate(objs["ta2"], "enrolled", objs["s6"])
    db.associate(objs["g2"], "enrolled", objs["s6"])
    db.associate(objs["g1"], "enrolled", objs["s7"])
    db.associate(objs["ra1"], "enrolled", objs["s2"])
    db.associate(objs["u1"], "enrolled", objs["s2"])
    db.associate(objs["u2"], "enrolled", objs["s3"])

    # ------------------------------------------------------------------
    # A student body sized so that rule R2's verbatim threshold (more
    # than 39 students enrolled in a CIS course) is met by c1 only:
    # c1 draws 25 (s2) + 20 (s3) + the named students above, c2 stays
    # well under 40.
    # ------------------------------------------------------------------
    for i in range(1, 26):
        student = add("Student", f"st{i}",
                      **{"SS#": f"500-00-{i:04d}",
                         "name": f"Student{i}",
                         "GPA": 2.0 + (i % 20) / 10.0})
        db.associate(student, "enrolled", objs["s2"])
        db.associate(student, "Major", objs["d1" if i % 2 else "d2"])
    for i in range(26, 46):
        student = add("Student", f"st{i}",
                      **{"SS#": f"500-00-{i:04d}",
                         "name": f"Student{i}",
                         "GPA": 2.0 + (i % 20) / 10.0})
        db.associate(student, "enrolled", objs["s3"])
        db.associate(student, "Major", objs["d1" if i % 2 else "d2"])

    # ------------------------------------------------------------------
    # Transcripts (grades on the 4.0 scale; B = 3.0 — see schema module)
    # ------------------------------------------------------------------
    transcripts = [
        ("tr1", "g1", "c2", 3.7, "A-"),
        ("tr2", "ta1", "c2", 4.0, "A"),
        ("tr3", "g2", "c2", 2.0, "C"),
        ("tr4", "ta2", "c2", 3.5, "B+"),
        ("tr5", "g1", "c3", 3.0, "B"),
    ]
    for label, student, course, grade, letter in transcripts:
        record = add("Transcript", label, grade=grade, letter=letter)
        db.associate(record, "student", objs[student])
        db.associate(record, "course", objs[course])

    # ------------------------------------------------------------------
    # Advising (faculty advises grad)
    # ------------------------------------------------------------------
    a1 = add("Advising", "a1")
    db.associate(a1, "faculty", objs["f1"])
    db.associate(a1, "grad", objs["ta1"])
    a2 = add("Advising", "a2")
    db.associate(a2, "faculty", objs["f2"])
    db.associate(a2, "grad", objs["g1"])

    return data


def build_sdb(data: PaperData, name: str = "SDB") -> Subdatabase:
    """The subdatabase SDB of Figure 3.1 over the paper database."""
    intension = IntensionalPattern(
        [ClassRef("Teacher"), ClassRef("Section"), ClassRef("Course")],
        [Edge(0, 1, "base", "teaches"), Edge(1, 2, "base", "course")])
    oid = data.oid
    patterns = [
        ExtensionalPattern([oid("t1"), oid("s2"), oid("c1")]),
        ExtensionalPattern([oid("t2"), oid("s3"), oid("c1")]),
        ExtensionalPattern([oid("t2"), oid("s3"), oid("c2")]),
        ExtensionalPattern([oid("t3"), oid("s4"), None]),
        ExtensionalPattern([None, oid("s5"), oid("c4")]),
        ExtensionalPattern([oid("t4"), None, None]),
        ExtensionalPattern([None, None, oid("c3")]),
    ]
    return Subdatabase(name, intension, patterns)
