"""A seeded, scale-parameterized University data generator.

Benchmarks need databases orders of magnitude larger than the paper's
figure; :func:`generate_university` builds one deterministically from a
:class:`GeneratorConfig` (same seed, same database).  The shape mirrors
the paper database: departments own courses, courses have sections,
teachers (some of them TAs) teach sections, students enroll, grads hold
transcripts and advising relationships.

For the transitive-closure benchmarks the course ``prereq``
self-association is populated as a random DAG (edges always point from a
higher-numbered course to a lower-numbered one, so the paper's acyclicity
assumption holds); ``prereq_cyclic=True`` adds back-edges for exercising
``on_cycle='stop'``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.model.database import Database
from repro.model.objects import Entity
from repro.university.schema import build_university_schema


@dataclass
class GeneratorConfig:
    """Knobs for :func:`generate_university`."""

    departments: int = 3
    courses: int = 20
    sections_per_course: int = 2
    teachers: int = 10
    students: int = 200
    enrollments_per_student: int = 3
    tas: int = 4
    grads: int = 20
    faculty: int = 5
    transcripts_per_grad: int = 2
    prereqs_per_course: int = 1
    prereq_cyclic: bool = False
    seed: int = 42


@dataclass
class GeneratedData:
    """The generated database plus per-class object lists."""

    db: Database
    by_class: Dict[str, List[Entity]]

    def all_of(self, cls: str) -> List[Entity]:
        return self.by_class.get(cls, [])


def generate_university(config: GeneratorConfig,
                        seed: Optional[int] = None) -> GeneratedData:
    """Build a deterministic University database of the configured size.

    ``seed`` overrides ``config.seed`` without mutating the (possibly
    shared) config — benchmarks thread a ``--seed`` command-line option
    through here to re-run every scenario on fresh random data.
    """
    if seed is not None:
        config = replace(config, seed=seed)
    rng = random.Random(config.seed)
    schema = build_university_schema()
    db = Database(schema, name=f"University(seed={config.seed})")
    by_class: Dict[str, List[Entity]] = {}

    def add(cls: str, label: str, **attrs) -> Entity:
        entity = db.insert(cls, label, **attrs)
        by_class.setdefault(cls, []).append(entity)
        return entity

    departments = [
        add("Department", f"d{i}", name=f"Dept{i}",
            college=f"College{i % 3}")
        for i in range(config.departments)]

    courses = []
    for i in range(config.courses):
        course = add("Course", f"c{i}",
                     **{"c#": 1000 + i * 37 % 7000,
                        "title": f"Course {i}",
                        "credit_hours": 1 + i % 5})
        db.associate(course, "department",
                     departments[i % len(departments)])
        courses.append(course)

    # Prerequisite DAG (optionally with cycles).
    for i, course in enumerate(courses):
        for _ in range(config.prereqs_per_course):
            if i > 0:
                target = courses[rng.randrange(i)]
                db.associate(course, "prereq", target)
        if config.prereq_cyclic and i > 0 and rng.random() < 0.3:
            db.associate(courses[rng.randrange(i)], "prereq", course)

    sections = []
    for i, course in enumerate(courses):
        for j in range(config.sections_per_course):
            section = add("Section", f"s{i}_{j}",
                          **{"section#": j + 1,
                             "textbook": f"Book{(i + j) % 11}"})
            db.associate(section, "course", course)
            sections.append(section)

    teachers = [
        add("Teacher", f"t{i}",
            **{"SS#": f"1-{i:06d}", "name": f"Teacher{i}",
               "degree": rng.choice(["PhD", "MS"])})
        for i in range(config.teachers)]
    faculty = [
        add("Faculty", f"f{i}",
            **{"SS#": f"2-{i:06d}", "name": f"Faculty{i}",
               "degree": "PhD",
               "rank": rng.choice(["Assistant", "Associate", "Full"])})
        for i in range(config.faculty)]
    grads = [
        add("Grad", f"g{i}",
            **{"SS#": f"3-{i:06d}", "name": f"Grad{i}",
               "GPA": round(2.0 + rng.random() * 2.0, 2)})
        for i in range(config.grads)]
    tas = [
        add("TA", f"ta{i}",
            **{"SS#": f"4-{i:06d}", "name": f"TA{i}",
               "GPA": round(2.0 + rng.random() * 2.0, 2),
               "degree": "BS"})
        for i in range(config.tas)]

    teaching_pool = teachers + faculty + tas
    for section in sections:
        db.associate(rng.choice(teaching_pool), "teaches", section)

    students = [
        add("Student", f"st{i}",
            **{"SS#": f"5-{i:06d}", "name": f"Student{i}",
               "GPA": round(2.0 + rng.random() * 2.0, 2)})
        for i in range(config.students)]
    for student in students + grads:
        db.associate(student, "Major", rng.choice(departments))
        picks = rng.sample(sections,
                           min(config.enrollments_per_student,
                               len(sections)))
        for section in picks:
            db.associate(student, "enrolled", section)

    for index, grad in enumerate(grads + tas):
        for j in range(config.transcripts_per_grad):
            record = add("Transcript", f"tr{index}_{j}",
                         grade=round(2.0 + rng.random() * 2.0, 1),
                         letter=rng.choice(["A", "B", "C"]))
            db.associate(record, "student", grad)
            db.associate(record, "course", rng.choice(courses))
        if faculty:
            advising = add("Advising", f"a{index}")
            db.associate(advising, "faculty", rng.choice(faculty))
            db.associate(advising, "grad", grad)

    return GeneratedData(db, by_class)
