"""The University schema of Figure 2.1.

Reconstructed from the paper's text (the figure itself is a diagram):

E-classes and generalization hierarchy::

    Person ──G──> Student, Teacher
    Student ──G──> Grad, Undergrad
    Grad ──G──> TA, RA
    Teacher ──G──> TA, Faculty        (TA has two superclasses)

Entity associations (aggregation links between E-classes)::

    Teacher  --teaches-->   Section      (a teacher teaches sections)
    Student  --enrolled-->  Section      (students enrolled in sections)
    Section  --course-->    Course       (the course a section offers;
                                          many-valued because the paper
                                          waives the 1:N constraint so s3
                                          can relate to two courses)
    Student  --Major-->     Department   (the paper's explicitly renamed
                                          link)
    Course   --department-> Department   (the offering department)
    Course   --prereq-->    Course       (the Prereq self-association)
    Transcript --student--> Student
    Transcript --course-->  Course
    Advising --faculty-->   Faculty
    Advising --grad-->      Grad

Descriptive attributes follow the paper where it names them (SS#, Name on
Person; Degree on Teacher; section#, textbook on Section; c#, title,
credit_hours on Course; name on Department; grade on Transcript; GPA on
Student — Query 4.1 filters TAs by GPA).

The paper writes transcript grades as letters (``grade >= 'B'``); since
letter grades order opposite to their quality lexically, ``grade`` is
stored on the 4.0 scale (B = 3.0) and the letter kept in ``letter`` — a
documented substitution (see DESIGN.md).
"""

from __future__ import annotations

from repro.model.dclass import DClass, INTEGER, REAL, STRING
from repro.model.schema import Schema

#: The ambiguity showcase of Section 3.2: ``TA * Section`` must be
#: disambiguated through Teacher (teaches) or Grad (enrolled).
AMBIGUOUS_PAIR = ("TA", "Section")


def build_university_schema() -> Schema:
    """Build the S-diagram of Figure 2.1."""
    schema = Schema("University")

    for name, doc in [
        ("Person", "people known to the university"),
        ("Student", "persons enrolled as students"),
        ("Teacher", "persons who teach"),
        ("Grad", "graduate students"),
        ("Undergrad", "undergraduate students"),
        ("TA", "teaching assistants (grads who teach)"),
        ("RA", "research assistants"),
        ("Faculty", "faculty members"),
        ("Section", "course sections (current offerings)"),
        ("Course", "courses in the catalog"),
        ("Department", "academic departments"),
        ("Transcript", "one completed course record of a student"),
        ("Advising", "an advising relationship (faculty advises grad)"),
    ]:
        schema.add_eclass(name, doc)

    # Generalization hierarchy.
    schema.add_subclass("Person", "Student")
    schema.add_subclass("Person", "Teacher")
    schema.add_subclass("Student", "Grad")
    schema.add_subclass("Student", "Undergrad")
    schema.add_subclass("Grad", "TA")
    schema.add_subclass("Grad", "RA")
    schema.add_subclass("Teacher", "TA")
    schema.add_subclass("Teacher", "Faculty")

    # D-classes / descriptive attributes.
    schema.add_dclass(DClass("SS#", str))
    schema.add_attribute("Person", "SS#", "SS#")
    schema.add_attribute("Person", "name", STRING)
    schema.add_attribute("Student", "GPA", REAL)
    schema.add_attribute("Teacher", "degree", STRING)
    schema.add_attribute("Undergrad", "year", INTEGER)
    schema.add_attribute("RA", "project", STRING)
    schema.add_attribute("Faculty", "rank", STRING)
    schema.add_attribute("Section", "section#", INTEGER)
    schema.add_attribute("Section", "textbook", STRING)
    schema.add_attribute("Course", "c#", INTEGER)
    schema.add_attribute("Course", "title", STRING)
    schema.add_attribute("Course", "credit_hours", INTEGER)
    schema.add_attribute("Department", "name", STRING)
    schema.add_attribute("Department", "college", STRING)
    schema.add_attribute("Transcript", "grade", REAL)
    schema.add_attribute("Transcript", "letter", STRING)

    # Entity associations.
    schema.add_association("Teacher", "Section", name="teaches", many=True)
    schema.add_association("Student", "Section", name="enrolled", many=True)
    schema.add_association("Section", "Course", name="course", many=True)
    schema.add_association("Student", "Department", name="Major", many=False)
    schema.add_association("Course", "Department", name="department",
                           many=False)
    schema.add_association("Course", "Course", name="prereq", many=True)
    schema.add_association("Transcript", "Student", name="student",
                           many=False)
    schema.add_association("Transcript", "Course", name="course",
                           many=False)
    schema.add_association("Advising", "Faculty", name="faculty",
                           many=False)
    schema.add_association("Advising", "Grad", name="grad", many=False)

    return schema
