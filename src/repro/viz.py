"""Graphviz (DOT) renderings of schemas and subdatabases.

The paper's group built G-OQL, a graphics interface to OQL (TY88); this
module is its batch-mode analogue: emit DOT text for the diagrams the
paper draws, without requiring graphviz at runtime —

* :func:`schema_to_dot` — the S-diagram (Figure 2.1): E-classes as
  boxes, D-classes as ellipses, aggregation links as labeled arrows,
  generalization links as hollow-arrow edges, I/X declarations as
  diamond fan-outs;
* :func:`intension_to_dot` — a subdatabase's intensional association
  pattern (Figure 3.1a), derived direct associations dashed;
* :func:`extension_to_dot` — a subdatabase's extensional diagram
  (Figure 3.1b): object nodes grouped per class with the extensional
  links between pattern components.

Render with ``dot -Tsvg out.dot -o out.svg`` (or any DOT viewer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.model.associations import AssociationKind
from repro.model.schema import Schema
from repro.subdb.subdatabase import Subdatabase


def _quote(text: str) -> str:
    escaped = str(text).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def schema_to_dot(schema: Schema, name: Optional[str] = None) -> str:
    """The S-diagram as a DOT digraph."""
    lines: List[str] = [
        f"digraph {_quote(name or schema.name)} {{",
        "  rankdir=BT;",
        "  node [fontname=Helvetica];",
    ]
    for cls in schema.eclass_names:
        lines.append(f"  {_quote(cls)} [shape=box];")
    used_dclasses: Set[str] = set()
    for link in schema.aggregations():
        if link.target in schema.dclass_names:
            used_dclasses.add(link.target)
    for dclass in sorted(used_dclasses):
        lines.append(
            f"  {_quote('D:' + dclass)} [shape=ellipse, "
            f"label={_quote(dclass)}];")
    for link in schema.aggregations():
        target = link.target
        target_node = f"D:{target}" if target in schema.dclass_names \
            else target
        style = ""
        if link.kind is AssociationKind.COMPOSITION:
            style = ", arrowhead=diamond"
        elif link.kind in (AssociationKind.INTERACTION,
                           AssociationKind.CROSSPRODUCT):
            style = ", style=dotted"
        card = "*" if link.many else "1"
        lines.append(
            f"  {_quote(link.owner)} -> {_quote(target_node)} "
            f"[label={_quote(f'{link.kind.value}:{link.name}[{card}]')}"
            f"{style}];")
    for g in schema.generalizations():
        lines.append(
            f"  {_quote(g.subclass)} -> {_quote(g.superclass)} "
            f"[arrowhead=onormal, label=\"G\"];")
    lines.append("}")
    return "\n".join(lines)


def intension_to_dot(subdb: Subdatabase) -> str:
    """A subdatabase's intensional pattern (Figure 3.1a / 4.3a style)."""
    lines = [f"digraph {_quote(subdb.name)} {{",
             "  rankdir=LR;",
             "  node [shape=box, fontname=Helvetica];"]
    for ref in subdb.intension.slots:
        lines.append(f"  {_quote(ref.slot)};")
    for edge in subdb.intension.edges:
        a = subdb.intension.slots[edge.i].slot
        b = subdb.intension.slots[edge.j].slot
        style = ", style=dashed" if edge.kind == "derived" else ""
        lines.append(
            f"  {_quote(a)} -> {_quote(b)} [dir=none, "
            f"label={_quote(edge.label)}{style}];")
    for info in subdb.derived_info.values():
        lines.append(
            f"  {_quote(str(info.source))} [shape=box, "
            f"style=rounded];")
        inner = info.ref.slot.split(":", 1)[-1]
        lines.append(
            f"  {_quote(inner)} -> {_quote(str(info.source))} "
            f"[arrowhead=onormal, label=\"G (induced)\", style=bold];")
    lines.append("}")
    return "\n".join(lines)


def extension_to_dot(subdb: Subdatabase) -> str:
    """A subdatabase's extensional diagram (Figure 3.1b style): object
    nodes in one rank per class, links from the patterns' adjacent
    non-null components."""
    intension = subdb.intension
    lines = [f"digraph {_quote(subdb.name + '_extension')} {{",
             "  rankdir=LR;",
             "  node [shape=circle, fontname=Helvetica, "
             "fixedsize=false];"]
    # One subgraph (same rank) per slot.
    per_slot: Dict[int, Set[str]] = {i: set()
                                     for i in range(len(intension))}
    for pattern in subdb.patterns:
        for i, value in enumerate(pattern.values):
            if value is not None:
                per_slot[i].add(repr(value))
    for i, ref in enumerate(intension.slots):
        lines.append(f"  subgraph {_quote('cluster_' + ref.slot)} {{")
        lines.append(f"    label={_quote(ref.slot)};")
        for node in sorted(per_slot[i]):
            lines.append(f"    {_quote(f'{i}:{node}')} "
                         f"[label={_quote(node)}];")
        lines.append("  }")
    drawn: Set[tuple] = set()
    for pattern in subdb.patterns:
        for edge in intension.edges:
            a, b = pattern[edge.i], pattern[edge.j]
            if a is None or b is None:
                continue
            key = (edge.i, repr(a), edge.j, repr(b))
            if key in drawn:
                continue
            drawn.add(key)
            lines.append(
                f"  {_quote(f'{edge.i}:{a!r}')} -> "
                f"{_quote(f'{edge.j}:{b!r}')} [dir=none];")
    lines.append("}")
    return "\n".join(lines)
