"""Shared fixtures.

``paper`` builds the paper database fresh per test (tests mutate it);
``universe``/``qp`` wrap it for OQL-level tests; ``engine`` gives a rule
engine with no rules loaded.  ``tiny_generated`` is a small deterministic
generated database for integration tests.
"""

from __future__ import annotations

import pytest

from repro import QueryProcessor, RuleEngine, Universe
from repro.university import (
    GeneratorConfig,
    build_paper_database,
    build_sdb,
    generate_university,
)


@pytest.fixture
def paper():
    return build_paper_database()


@pytest.fixture
def universe(paper):
    return Universe(paper.db)


@pytest.fixture
def qp(universe):
    return QueryProcessor(universe)


@pytest.fixture
def sdb(paper, universe):
    subdb = build_sdb(paper)
    universe.register(subdb)
    return subdb


@pytest.fixture
def engine(paper):
    return RuleEngine(paper.db)


@pytest.fixture(scope="session")
def tiny_generated():
    return generate_university(GeneratorConfig(
        departments=2, courses=8, sections_per_course=2, teachers=5,
        students=30, enrollments_per_student=2, tas=2, grads=6,
        faculty=3, transcripts_per_grad=2, seed=7))


def labels(subdb):
    """Patterns of a subdatabase as sorted tuples of OID labels."""
    return sorted(subdb.labels(), key=lambda t: tuple(str(x) for x in t))
