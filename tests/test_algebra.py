"""Tests for the subdatabase set algebra."""

import pytest

from repro.errors import OQLSemanticError
from repro.model.oid import OID
from repro.subdb.algebra import (
    difference,
    intersection,
    restrict,
    symmetric_difference,
    union,
)
from repro.subdb.intension import IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase


def P(*values):
    return ExtensionalPattern([None if v is None else OID(v)
                               for v in values])


def make(name, slots, patterns):
    return Subdatabase(name,
                       IntensionalPattern([ClassRef.parse(s)
                                           for s in slots]),
                       patterns)


@pytest.fixture
def ab():
    a = make("A1", ["X", "Y"], [P(1, 2), P(3, 4)])
    b = make("A2", ["X", "Y"], [P(3, 4), P(5, 6)])
    return a, b


class TestUnion:
    def test_basic(self, ab):
        a, b = ab
        assert union(a, b).patterns == {P(1, 2), P(3, 4), P(5, 6)}

    def test_subsumption_applied(self):
        a = make("A", ["X", "Y"], [P(1, None)])
        b = make("B", ["X", "Y"], [P(1, 2)])
        assert union(a, b).patterns == {P(1, 2)}

    def test_alignment_by_slot_name(self):
        a = make("A", ["X", "Y"], [P(1, 2)])
        b = make("B", ["Y", "X"], [P(2, 1)])  # same pattern, swapped
        assert union(a, b).patterns == {P(1, 2)}

    def test_incompatible_slots_rejected(self):
        a = make("A", ["X", "Y"], [])
        b = make("B", ["X", "Z"], [])
        with pytest.raises(OQLSemanticError):
            union(a, b)

    def test_custom_name(self, ab):
        a, b = ab
        assert union(a, b, name="combined").name == "combined"


class TestIntersectionDifference:
    def test_intersection(self, ab):
        a, b = ab
        assert intersection(a, b).patterns == {P(3, 4)}

    def test_difference(self, ab):
        a, b = ab
        assert difference(a, b).patterns == {P(1, 2)}
        assert difference(b, a).patterns == {P(5, 6)}

    def test_symmetric_difference(self, ab):
        a, b = ab
        assert symmetric_difference(a, b).patterns == {P(1, 2), P(5, 6)}

    def test_null_components_compare_exactly(self):
        a = make("A", ["X", "Y"], [P(1, None)])
        b = make("B", ["X", "Y"], [P(1, 2)])
        assert intersection(a, b).patterns == set()


class TestRestrict:
    def test_predicate_filtering(self, ab):
        a, _ = ab
        result = restrict(a, lambda p: p[0].value > 1)
        assert result.patterns == {P(3, 4)}

    def test_derived_info_preserved(self):
        from repro.subdb.derived import DerivedClassInfo
        info = {"X": DerivedClassInfo(ClassRef("X", "S"), ClassRef("X"))}
        a = Subdatabase("A",
                        IntensionalPattern([ClassRef("X")]),
                        [P(1)], info)
        assert restrict(a, lambda p: True).derived_info == info


class TestEndToEnd:
    def test_diff_two_snapshots_of_a_derived_result(self):
        from repro.rules.engine import RuleEngine
        from repro.university import build_paper_database
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)")
        before = engine.derive("TS")
        data.db.associate(data["t4"], "teaches", data["s5"])
        after = engine.derive("TS", force=True)
        delta = symmetric_difference(after, before)
        assert delta.labels() == {("t4", "s5")}
