"""Unit and property tests for the secondary value indexes.

The contract under test is *bit-exactness against the scan*: whenever
:meth:`AttrIndex.probe` answers ``OK``, its dense-id list must equal the
ids a per-entity scan over ``conditions.compare`` would keep — and
whenever that scan would raise ``OQLSemanticError``, the probe must
*not* answer ``OK`` (it reports ``CONFLICT`` or ``FALLBACK`` and the
caller scans, reproducing the error).  Maintenance (append / set_value /
without) must preserve the same equivalence, and the frozen plane
encoding must be order-preserving.
"""

import math
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OQLSemanticError
from repro.oql.conditions import compare
from repro.subdb.attrindex import (
    CONFLICT,
    FALLBACK,
    OK,
    AttrIndex,
    EXACT_INT_BOUND,
    encode_ordered,
)


class FakeTable:
    """Stands in for an InternTable: probing never touches the table."""

    key = ("base", "T")


OPS = ("=", "!=", "<", "<=", ">", ">=")

# Value pools chosen to cross every census boundary: None, bool (its own
# type in compare), int/float (one numeric family), two string shapes.
scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50,
              allow_nan=False, allow_infinity=False),
    st.sampled_from(["a", "b", "zz", ""]),
)
columns = st.lists(scalar, min_size=0, max_size=30)


def scan(values, op, literal):
    """The reference semantics: ids kept by a per-entity scan, or the
    OQLSemanticError the scan raises first."""
    out = array("q")
    for i, value in enumerate(values):
        if compare(value, op, literal):
            out.append(i)
    return out


def check_parity(index, values, op, literal):
    status, ids = index.probe(op, literal)
    try:
        expected = scan(values, op, literal)
    except OQLSemanticError:
        assert status != OK, (
            f"probe answered {list(ids)} where the scan raises "
            f"({values!r} {op} {literal!r})")
        return
    if status == OK:
        assert list(ids) == list(expected), (values, op, literal)
        assert index.cardinality(op, literal) == len(expected)
    else:
        # Declining is always safe, but a conflict report must be
        # backed by an actual conflicting value somewhere: an index
        # that cries CONFLICT on clean data would turn working queries
        # into scans for no reason.  (scan() not raising here proves
        # *this* probe is clean, so only FALLBACK may decline.)
        assert status == FALLBACK, (values, op, literal)


class TestProbeParity:
    @settings(max_examples=300, deadline=None)
    @given(columns, st.sampled_from(OPS), scalar)
    def test_probe_matches_scan(self, values, op, literal):
        check_parity(AttrIndex(FakeTable(), "a", list(values)),
                     values, op, literal)

    def test_equality_merges_numeric_towers_like_python(self):
        # 1 == 1.0 == True share one dict bucket, exactly as `=` does.
        values = [1, 1.0, True, 2, False]
        index = AttrIndex(FakeTable(), "a", values)
        for literal in (1, 1.0, True):
            status, ids = index.probe("=", literal)
            assert status == OK and list(ids) == [0, 1, 2]
            status, ids = index.probe("!=", literal)
            assert status == OK and list(ids) == [3, 4]

    def test_not_equal_is_exact_complement(self):
        values = ["x", "y", "x", "z"]
        index = AttrIndex(FakeTable(), "a", values)
        status, ids = index.probe("!=", "x")
        assert status == OK and list(ids) == [1, 3]
        status, ids = index.probe("!=", "missing")
        assert status == OK and list(ids) == [0, 1, 2, 3]

    def test_ordering_against_none_literal_is_empty(self):
        index = AttrIndex(FakeTable(), "a", [1, 2, None])
        for op in ("<", "<=", ">", ">="):
            status, ids = index.probe(op, None)
            assert status == OK and list(ids) == []

    def test_none_values_never_satisfy_ordering(self):
        index = AttrIndex(FakeTable(), "a", [None, 5, None, 1])
        status, ids = index.probe("<", 10)
        assert status == OK and list(ids) == [1, 3]

    def test_mixed_type_census_reports_conflict(self):
        index = AttrIndex(FakeTable(), "a", [1, "s"])
        assert index.probe("<", 5)[0] == CONFLICT
        assert index.probe("<", "t")[0] == CONFLICT
        # bool is not a number for ordering: int-vs-bool conflicts too.
        assert AttrIndex(FakeTable(), "a",
                         [1, True]).probe("<", 5)[0] == CONFLICT
        # ...but equality still answers through the hash index.
        assert index.probe("=", 1) == (OK, array("q", [0]))

    def test_unhashable_value_breaks_to_fallback(self):
        index = AttrIndex(FakeTable(), "a", [1, [2, 3]])
        assert index.broken
        for op in OPS:
            assert index.probe(op, 1)[0] == FALLBACK
            assert index.cardinality(op, 1) is None

    def test_string_ranges_bisect_the_typed_column(self):
        values = ["pear", "apple", "fig", None, "apple"]
        index = AttrIndex(FakeTable(), "a", values)
        status, ids = index.probe("<=", "fig")
        assert status == OK and list(ids) == [1, 2, 4]


class TestMaintenance:
    ops = st.lists(
        st.one_of(
            st.tuples(st.just("append"), scalar),
            st.tuples(st.just("set"), scalar),
            st.tuples(st.just("delete"), st.integers(0, 100)),
        ),
        max_size=12)

    @settings(max_examples=200, deadline=None)
    @given(columns, ops, st.sampled_from(OPS), scalar)
    def test_maintained_equals_rebuilt(self, values, steps, op, literal):
        values = list(values)
        index = AttrIndex(FakeTable(), "a", list(values))
        for kind, arg in steps:
            if kind == "append":
                values.append(arg)
                index.append(arg)
            elif kind == "set" and values:
                i = len(values) // 2
                values[i] = arg
                index.set_value(i, arg)
            elif kind == "delete" and values:
                dead = arg % len(values)
                del values[dead]
                index = index.without(dead, FakeTable())
        if not index.broken:
            rebuilt = AttrIndex(FakeTable(), "a", list(values))
            assert index.stats() | {"epoch": 0} \
                == rebuilt.stats() | {"epoch": 0}
        check_parity(index, values, op, literal)

    def test_in_place_maintenance_bumps_epoch(self):
        index = AttrIndex(FakeTable(), "a", [1, 2])
        index.append(3)
        assert index.epoch == 1
        index.set_value(0, 9)
        assert index.epoch == 2
        index.set_value(0, 9)  # no-op rewrite must not invalidate planes
        assert index.epoch == 2


class TestPlaneEncoding:
    @settings(max_examples=200, deadline=None)
    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_encode_ordered_is_monotone(self, a, b):
        if a <= b:
            assert encode_ordered(a) <= encode_ordered(b)
        if a == b:
            assert encode_ordered(a) == encode_ordered(b)

    def test_plane_arrays_freeze_the_numeric_column(self):
        index = AttrIndex(FakeTable(), "a", [3.5, -2, "s", None, 10])
        planes = index.plane_arrays()
        assert list(planes["num_ids"]) == [1, 0, 4]
        keys = list(planes["num_keys"])
        assert keys == sorted(keys)
        assert list(planes["exact"]) == [1]

    def test_plane_arrays_flag_inexact_big_ints(self):
        index = AttrIndex(FakeTable(), "a", [EXACT_INT_BOUND * 4])
        assert list(index.plane_arrays()["exact"]) == [0]

    def test_encode_handles_int_bool_domain(self):
        assert encode_ordered(-1) < encode_ordered(0) < encode_ordered(1)
        assert encode_ordered(0.5) < encode_ordered(1)
        assert encode_ordered(-math.inf) < encode_ordered(-1e300)


class TestStoreLifecycle:
    def _universe(self):
        from repro.subdb.universe import Universe
        from repro.university import build_paper_database
        return Universe(build_paper_database().db)

    def test_declare_build_drop(self):
        from repro.subdb.refs import ClassRef
        universe = self._universe()
        assert universe.declare_index("Course", "c#")
        assert not universe.declare_index("Course", "c#")
        ref = ClassRef("Course")
        assert universe.attr_index_if_ready(ref, "c#") is None  # lazy
        index = universe.attr_index(ref, "c#")
        assert index is not None and len(index) == len(
            universe.db.extent("Course"))
        assert universe.attr_index_if_ready(ref, "c#") is index
        assert universe.drop_index("Course", "c#")
        assert universe.attr_index(ref, "c#") is None

    def test_declare_unknown_attribute_raises(self):
        with pytest.raises(Exception):
            self._universe().declare_index("Course", "nope")

    def test_stats_cover_declared_and_built(self):
        universe = self._universe()
        universe.declare_index("Course", "c#")
        universe.declare_index("Course", "title")
        from repro.subdb.refs import ClassRef
        universe.attr_index(ClassRef("Course"), "c#")
        stats = {(e["cls"], e["attr"]): e for e in universe.index_stats()}
        assert stats[("Course", "c#")]["built"]
        assert not stats[("Course", "title")]["built"]

    def test_derived_refs_are_never_indexed(self):
        from repro.subdb.refs import ClassRef
        universe = self._universe()
        universe.declare_index("Course", "c#")
        derived = ClassRef("Course", subdb="Derived")
        assert universe.attr_index(derived, "c#") is None
