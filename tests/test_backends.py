"""The durable-storage tier: WAL mechanics, crash injection, recovery
byte-identity, point-in-time restore, and JSON/sqlite backend parity.

Byte-identity throughout means: two engines serialize to the same
canonical session document (``session_to_dict`` → ``json.dumps`` with
sorted keys) — the same equivalence the differential harness uses.

Crash injection happens at two layers:

* *physical*: the WAL file is truncated at **every byte offset** of its
  tail record (a torn append), and recovery must come up byte-identical
  to the state at the last durable record;
* *logical*: a fault hook raises :class:`InjectedCrash` at the named
  points inside checkpoint writes, and recovery must fall back to the
  previous checkpoint + full WAL replay — byte-identical to the live
  session that "crashed".

The number of mutation rounds in the crash-matrix tests scales with
``CRASH_ROUNDS`` (default 4; CI's fault-injection tier raises it).
"""

import json
import os
import warnings

import pytest

from repro.errors import DataError
from repro.model.database import Database
from repro.rules.engine import RuleEngine
from repro.storage import JsonBackend, SqliteBackend, open_backend
from repro.storage.backends.wal import (
    WriteAheadLog,
    decode_record,
    encode_record,
)
from repro.storage.session import session_to_dict
from repro.university import build_paper_database

CRASH_ROUNDS = int(os.environ.get("CRASH_ROUNDS", "4"))

RULE_TC = ("if context Teacher * Section * Course "
           "then TC (Teacher, Course)")


def dump(engine) -> bytes:
    return json.dumps(session_to_dict(engine), sort_keys=True).encode()


def paper_engine() -> RuleEngine:
    return RuleEngine(build_paper_database().db)


def mutate(engine: RuleEngine, round_no: int) -> None:
    """One deterministic mixed-mutation round (insert, attribute
    update, links, batch, delete, rule registration)."""
    db = engine.db
    teacher = db.insert("Teacher", name=f"T{round_no}", degree="PhD",
                        **{"SS#": f"t-{round_no}"})
    db.set_attribute(teacher.oid, "name", f"T{round_no}b")
    section = next(iter(db.extent("Section")))
    db.associate(teacher.oid, "teaches", section)
    with db.batch():
        student = db.insert("Student", name=f"S{round_no}", GPA=3.0,
                            **{"SS#": f"s-{round_no}"})
        db.associate(student, "enrolled", section)
    if round_no % 2:
        db.dissociate(teacher.oid, "teaches", section)
        db.delete(teacher.oid)
    if round_no == 1:
        engine.add_rule(RULE_TC, label="TC")


BACKENDS = ["json", "sqlite"]


# ---------------------------------------------------------------------------
# WAL mechanics
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        wal.open()
        assert wal.append({"kind": "x", "n": 1}) == 1
        assert wal.append({"kind": "y", "n": 2}) == 2
        wal.close()
        wal2 = WriteAheadLog(tmp_path / "w.jsonl")
        report = wal2.open()
        assert report.records == 2 and report.last_seq == 2
        assert [b["kind"] for b in wal2.records()] == ["x", "y"]
        assert wal2.append({"kind": "z"}) == 3
        wal2.close()

    def test_records_range(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.jsonl")
        wal.open()
        for n in range(5):
            wal.append({"n": n})
        seqs = [b["seq"] for b in wal.records(start=2, end=4)]
        assert seqs == [3, 4]
        wal.close()

    def test_crc_detects_bit_rot(self, tmp_path):
        path = tmp_path / "w.jsonl"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append({"kind": "a"})
        wal.append({"kind": "b"})
        wal.close()
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip one bit mid-second-record
        path.write_bytes(bytes(data))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = WriteAheadLog(path).open()
        assert report.records == 1
        assert report.truncated_bytes > 0

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "w.jsonl"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append({"kind": "a"})
        wal.close()
        good = path.read_bytes()
        partial = encode_record({"kind": "b", "seq": 2})[:-7]
        path.write_bytes(good + partial)
        with pytest.warns(RuntimeWarning):
            report = WriteAheadLog(path).open()
        assert report.records == 1
        assert path.read_bytes() == good  # file physically repaired

    def test_corrupt_middle_discards_tail(self, tmp_path):
        path = tmp_path / "w.jsonl"
        records = [encode_record({"kind": k, "seq": i + 1})
                   for i, k in enumerate("abc")]
        records[1] = b"garbage line\n"
        path.write_bytes(b"".join(records))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            report = WriteAheadLog(path).open()
        assert report.records == 1  # everything after the tear is gone

    def test_non_monotonic_seq_rejected(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_bytes(encode_record({"seq": 1})
                         + encode_record({"seq": 1}))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert WriteAheadLog(path).open().records == 1

    def test_sync_every_batches_fsyncs(self, tmp_path, monkeypatch):
        syncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (syncs.append(fd),
                                        real_fsync(fd))[1])
        wal = WriteAheadLog(tmp_path / "w.jsonl", sync_every=10)
        wal.open()
        baseline = len(syncs)
        for n in range(25):
            wal.append({"n": n})
        assert len(syncs) - baseline == 2  # at 10 and 20
        wal.sync()
        assert len(syncs) - baseline == 3  # the explicit barrier
        wal.close()

    def test_decode_rejects_bodies_without_seq(self):
        line = encode_record({"kind": "x", "seq": 1})
        assert decode_record(line)["kind"] == "x"
        import zlib
        payload = b'{"kind":"x"}'
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        assert decode_record(b"%08x " % crc + payload + b"\n") is None


# ---------------------------------------------------------------------------
# Recovery = checkpoint + replay
# ---------------------------------------------------------------------------


class TestRecovery:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recover_equals_live_session(self, tmp_path, kind):
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        for round_no in range(4):
            mutate(engine, round_no)
        recovered = backend.recover()
        assert dump(recovered) == dump(engine)
        backend.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recover_after_intermediate_checkpoints(self, tmp_path, kind):
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        for round_no in range(4):
            mutate(engine, round_no)
            backend.checkpoint()
        mutate(engine, 4)  # tail beyond the last checkpoint
        recovered = backend.recover()
        assert dump(recovered) == dump(engine)
        backend.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_reopen_and_continue(self, tmp_path, kind):
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        backend.close()
        # A new process: recover, attach, keep writing, recover again.
        backend2 = open_backend(tmp_path / "store", kind)
        engine2 = backend2.recover()
        assert dump(engine2) == dump(engine)
        backend2.attach(engine2)
        mutate(engine2, 1)
        recovered = backend2.recover()
        assert dump(recovered) == dump(engine2)
        backend2.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_version_vector_survives_recovery(self, tmp_path, kind):
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        recovered = backend.recover()
        assert recovered.db.version_state() == engine.db.version_state()
        backend.close()

    def test_auto_checkpoint_every_n_records(self, tmp_path):
        backend = JsonBackend(tmp_path / "store", checkpoint_every=3)
        backend.open()
        engine = paper_engine()
        backend.attach(engine)
        for round_no in range(3):
            mutate(engine, round_no)
        assert len(backend._checkpoint_seqs()) > 1
        assert dump(backend.recover()) == dump(engine)
        backend.close()

    def test_rule_removal_replays(self, tmp_path):
        backend = open_backend(tmp_path / "store", "json")
        engine = paper_engine()
        backend.attach(engine)
        engine.add_rule(RULE_TC, label="TC")
        engine.remove_rule("TC")
        recovered = backend.recover()
        assert recovered.rules == []
        assert dump(recovered) == dump(engine)
        backend.close()

    def test_recover_without_checkpoint_raises(self, tmp_path):
        backend = open_backend(tmp_path / "store", "json")
        with pytest.raises(DataError):
            backend.recover()
        backend.close()

    def test_derived_results_warm_after_recovery(self, tmp_path):
        from repro.rules.control import EvaluationMode
        backend = open_backend(tmp_path / "store", "json")
        engine = paper_engine()
        backend.attach(engine)
        engine.add_rule(RULE_TC, label="TC",
                        mode=EvaluationMode.PRE_EVALUATED)
        engine.refresh()
        mutate(engine, 0)
        backend.checkpoint()
        recovered = backend.recover()
        assert recovered.universe.has_subdb("TC")
        recovered.query("context TC:Course select title")
        assert recovered.stats.derivations["TC"] == 0  # loaded warm
        backend.close()


# ---------------------------------------------------------------------------
# Crash injection
# ---------------------------------------------------------------------------


class InjectedCrash(BaseException):
    """Raised by fault hooks; deliberately not an Exception so no
    library code can swallow it — the closest analogue to SIGKILL."""


class TestCrashInjection:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_torn_wal_append_at_every_byte(self, tmp_path, kind):
        """Kill the process mid-WAL-append: for *every* byte offset of
        the final record, recovery must be byte-identical to a clean
        replay of the surviving prefix."""
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        for round_no in range(CRASH_ROUNDS):
            mutate(engine, round_no)
        backend.close()

        wal_path = tmp_path / "store" / "wal.jsonl"
        full = wal_path.read_bytes()
        lines = full[:-1].split(b"\n")
        tail = lines[-1] + b"\n"
        prefix_len = len(full) - len(tail)

        # Reference states: replay the intact prefix cleanly, both with
        # and without the final record.
        def recover_with(data: bytes):
            wal_path.write_bytes(data)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                recovery = open_backend(tmp_path / "store", kind)
                state = dump(recovery.recover())
                recovery.close()
            return state

        with_tail = recover_with(full)
        without_tail = recover_with(full[:prefix_len])
        assert with_tail == dump(engine)

        step = max(1, len(tail) // 12)  # a spread of tear points
        for cut in range(1, len(tail), step):
            state = recover_with(full[:prefix_len + cut])
            expected = with_tail if cut == len(tail) else without_tail
            assert state == expected, f"tear at byte {cut} of the tail"
        assert recover_with(full) == with_tail  # restore the file

    @pytest.mark.parametrize("kind,point", [
        ("json", "checkpoint.before_write"),
        ("json", "checkpoint.mid_write"),
        ("sqlite", "checkpoint.before_write"),
        ("sqlite", "checkpoint.before_commit"),
    ])
    def test_kill_mid_checkpoint(self, tmp_path, kind, point):
        """Kill inside the checkpoint write: the store must fall back
        to the previous checkpoint + full WAL replay, byte-identical to
        the live session."""
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        for round_no in range(CRASH_ROUNDS):
            mutate(engine, round_no)

        def crash(at):
            if at == point:
                raise InjectedCrash(at)

        backend.fault_hook = crash
        with pytest.raises(InjectedCrash):
            backend.checkpoint()
        backend.fault_hook = None
        backend.wal.close()

        recovery = open_backend(tmp_path / "store", kind)
        assert max(recovery._checkpoint_seqs()) == 0  # genesis only
        recovered = recovery.recover()
        assert dump(recovered) == dump(engine)
        recovery.close()

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_completed_checkpoint_survives_later_tear(self, tmp_path,
                                                      kind):
        """A checkpoint plus a torn post-checkpoint tail recovers to
        the checkpointed-then-replayed state, not to genesis."""
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        backend.checkpoint()
        mutate(engine, 1)
        backend.close()
        wal_path = tmp_path / "store" / "wal.jsonl"
        wal_path.write_bytes(wal_path.read_bytes() + b"half a reco")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovery = open_backend(tmp_path / "store", kind)
            recovered = recovery.recover()
        assert dump(recovered) == dump(engine)
        recovery.close()

    def test_stray_tmp_files_ignored(self, tmp_path):
        backend = open_backend(tmp_path / "store", "json")
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        backend.close()
        # A crash mid-atomic-write leaves a temp sibling behind.
        (tmp_path / "store" / "checkpoint-99999999.json.abc.tmp") \
            .write_text("{ torn")
        recovery = open_backend(tmp_path / "store", "json")
        assert dump(recovery.recover()) == dump(engine)
        recovery.close()


# ---------------------------------------------------------------------------
# Point-in-time restore
# ---------------------------------------------------------------------------


class TestPointInTimeRestore:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_every_offset_matches_live_history(self, tmp_path, kind):
        """restore_to(seq) must reproduce the live session exactly as
        it stood when record seq was appended — for every offset."""
        backend = open_backend(tmp_path / "store", kind)
        engine = paper_engine()
        backend.attach(engine)
        history = {backend.wal.last_seq: dump(engine)}
        db = engine.db
        section = next(iter(db.extent("Section")))
        for n in range(6):
            teacher = db.insert("Teacher", name=f"P{n}", degree="MS",
                                **{"SS#": f"p-{n}"})
            history[backend.wal.last_seq] = dump(engine)
            db.associate(teacher.oid, "teaches", section)
            history[backend.wal.last_seq] = dump(engine)
            if n == 2:
                backend.checkpoint()  # restores must also work across it
            if n == 4:
                engine.add_rule(RULE_TC, label="TC")
                history[backend.wal.last_seq] = dump(engine)
        for seq, expected in history.items():
            assert dump(backend.restore_to(seq)) == expected, \
                f"offset {seq}"
        backend.close()

    def test_restore_below_compacted_history_raises(self, tmp_path):
        backend = open_backend(tmp_path / "store", "json")
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        backend.checkpoint()
        backend.compact()
        with pytest.raises(DataError):
            backend.restore_to(1)
        backend.close()

    def test_compact_keeps_recovery_exact(self, tmp_path):
        backend = open_backend(tmp_path / "store", "json")
        engine = paper_engine()
        backend.attach(engine)
        mutate(engine, 0)
        backend.checkpoint()
        mutate(engine, 1)  # tail past the checkpoint survives compaction
        backend.compact()
        assert dump(backend.recover()) == dump(engine)
        mutate(engine, 2)  # appends continue after compaction
        assert dump(backend.recover()) == dump(engine)
        backend.close()


# ---------------------------------------------------------------------------
# Backend parity & the sqlite lazy paths
# ---------------------------------------------------------------------------


class TestBackendParity:
    def test_json_and_sqlite_agree_byte_for_byte(self, tmp_path):
        dumps = {}
        for kind in BACKENDS:
            backend = open_backend(tmp_path / kind, kind)
            engine = paper_engine()
            backend.attach(engine)
            for round_no in range(4):
                mutate(engine, round_no)
                if round_no == 2:
                    backend.checkpoint()
            dumps[kind] = (dump(backend.recover()), dump(engine))
            backend.close()
        assert dumps["json"][0] == dumps["json"][1]
        assert dumps["sqlite"][0] == dumps["sqlite"][1]
        assert dumps["json"][0] == dumps["sqlite"][0]

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(DataError):
            open_backend(tmp_path / "x", "bolt")

    def test_sqlite_lazy_extent_stream(self, tmp_path):
        backend = open_backend(tmp_path / "store", "sqlite")
        engine = paper_engine()
        backend.attach(engine)
        rows = list(backend.iter_extent("Teacher"))
        assert {r["cls"] for r in rows} == {"Teacher"}
        assert [r["oid"] for r in rows] == sorted(r["oid"] for r in rows)
        assert len(rows) == len(engine.db.direct_extent("Teacher"))
        counts = backend.class_counts()
        assert counts["Teacher"] == len(rows)
        assert sum(counts.values()) == len(engine.db)
        backend.close()

    def test_sqlite_partial_recover(self, tmp_path):
        backend = open_backend(tmp_path / "store", "sqlite")
        engine = paper_engine()
        backend.attach(engine)
        partial = backend.partial_recover(["Teacher", "Section",
                                           "Course"])
        assert len(partial.db.direct_extent("Teacher")) == \
            len(engine.db.direct_extent("Teacher"))
        assert len(partial.db.direct_extent("Student")) == 0
        # Links among the loaded classes are present and queryable.
        result = partial.query(
            "context Teacher * Section * Course select name display")
        full = engine.query(
            "context Teacher * Section * Course select name display")
        assert result.output == full.output
        backend.close()


# ---------------------------------------------------------------------------
# Differential property: journal a generated session, recover, compare
# ---------------------------------------------------------------------------


class TestGeneratedWorkload:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_generated_update_stream_recovers_exactly(self, tmp_path,
                                                      kind):
        import random
        from repro.university import GeneratorConfig, generate_university
        rng = random.Random(11)
        data = generate_university(GeneratorConfig(
            departments=2, courses=6, sections_per_course=1,
            teachers=4, students=20, grads=4, tas=1, faculty=2,
            seed=11))
        engine = RuleEngine(data.db)
        backend = open_backend(tmp_path / "store", kind)
        backend.attach(engine)
        db = engine.db
        sections = sorted(db.extent("Section"))
        for n in range(30):
            op = rng.randrange(3)
            if op == 0:
                db.insert("Student", name=f"g{n}", GPA=2.0 + n % 3,
                          **{"SS#": f"g-{n}"})
            elif op == 1:
                student = db.insert("Student", name=f"h{n}", GPA=3.0,
                                    **{"SS#": f"h-{n}"})
                db.associate(student, "enrolled",
                             rng.choice(sections))
            else:
                victims = sorted(db.direct_extent("Student"))
                db.delete(rng.choice(victims))
            if n == 15:
                backend.checkpoint()
        assert dump(backend.recover()) == dump(engine)
        backend.close()


# ---------------------------------------------------------------------------
# Registry misuse
# ---------------------------------------------------------------------------


class TestRegistryMisuse:
    def test_unknown_kind_lists_available(self, tmp_path):
        with pytest.raises(DataError, match="unknown storage backend"):
            open_backend(tmp_path / "store", "parquet")
        with pytest.raises(DataError, match="json"):
            open_backend(tmp_path / "store", "parquet")

    def test_register_backend_dispatches_and_unregisters(self, tmp_path):
        from repro.storage.backends import BACKENDS, register_backend

        @register_backend
        class ProbeBackend(JsonBackend):
            kind = "probe-json"

        try:
            backend = open_backend(tmp_path / "store", "probe-json")
            assert isinstance(backend, ProbeBackend)
            backend.close()
        finally:
            del BACKENDS["probe-json"]
        with pytest.raises(DataError):
            open_backend(tmp_path / "store2", "probe-json")

    def test_builtin_kinds_present(self):
        from repro.storage.backends import BACKENDS
        assert BACKENDS["json"] is JsonBackend
        assert BACKENDS["sqlite"] is SqliteBackend
