"""Tests for the built-in operation-clause operations."""

import pytest

from repro.oql.query import QueryProcessor
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def qp():
    data = build_paper_database()
    universe = Universe(data.db)
    universe.register(build_sdb(data))
    return QueryProcessor(universe)


class TestBuiltins:
    def test_count(self, qp):
        result = qp.execute("context SDB:Teacher * SDB:Section "
                            "select name count()")
        assert result.op_result == 3

    def test_to_csv(self, qp):
        result = qp.execute("context SDB:Teacher * SDB:Section "
                            "select name section# to_csv()")
        lines = result.op_result.strip().splitlines()
        assert lines[0] == "SDB:Teacher.name,SDB:Section.section#"
        assert "Smith,1" in lines

    def test_to_csv_renders_null_empty(self, qp):
        result = qp.execute("context {{Grad} * Advising} * Faculty "
                            "select Grad[name] Faculty[name] to_csv()")
        assert any(line.endswith(",") for line in
                   result.op_result.strip().splitlines()[1:])

    def test_describe(self, qp):
        result = qp.execute("context SDB:Teacher * SDB:Section describe()")
        assert "classes: SDB:Teacher, SDB:Section" in result.op_result

    def test_to_dot(self, qp):
        result = qp.execute("context SDB:Teacher * SDB:Section to_dot()")
        assert result.op_result.startswith("digraph")

    def test_custom_registry_replaces_builtins(self):
        from repro.errors import OQLSemanticError
        from repro.oql.operations import OperationRegistry
        data = build_paper_database()
        qp = QueryProcessor(Universe(data.db),
                            operations=OperationRegistry())
        with pytest.raises(OQLSemanticError):
            qp.execute("context Teacher count()")

    def test_builtins_usable_through_engine(self):
        from repro.rules.engine import RuleEngine
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule("if context Teacher * Section then TS (Teacher)")
        result = engine.query("context TS:Teacher count()")
        assert result.op_result == 5
