"""Class-granular version vectors and the cross-query result cache.

The tentpole of this change: every update stamps only the superclass
closure of the touched class(es), queries are fingerprinted and cached
against the version vector of exactly the classes they read, and the
compact store applies single-object INSERT/DELETE as deltas instead of
purging.  These tests pin down the vector semantics, the cache's
hit/miss/invalidation behavior, memory bounding, budget and snapshot
interaction, the planner's per-class statistics, and the delta paths.
"""

from __future__ import annotations

import pytest

from repro import QueryProcessor, RuleEngine, Universe
from repro.model.database import Database
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.oql.cache import (
    DEFAULT_CACHE_BYTES,
    ResultCache,
    dependency_classes,
    fingerprint,
)
from repro.oql.evaluator import PatternEvaluator, _flatten
from repro.oql.parser import parse_query
from repro.oql.planner import Planner
from repro.subdb.refs import ClassRef
from repro.university import build_paper_database, build_sdb


def _labels(subdb):
    return sorted(subdb.labels(),
                  key=lambda t: tuple(str(x) for x in t))


# ----------------------------------------------------------------------
# Version vectors
# ----------------------------------------------------------------------


class TestVersionVectors:
    def test_insert_bumps_superclass_closure_only(self, paper):
        db = paper.db
        before = {cls: db.class_version(cls) for cls in
                  ("TA", "Grad", "Teacher", "Student", "Person",
                   "Course", "Section")}
        db.insert("TA", "ta_new")
        for cls in ("TA", "Grad", "Teacher", "Student", "Person"):
            assert db.class_version(cls) > before[cls], cls
        for cls in ("Course", "Section"):
            assert db.class_version(cls) == before[cls], cls

    def test_associate_bumps_both_endpoint_closures(self, paper):
        db = paper.db
        teacher = db.insert("Teacher", "t_new", **{"SS#": "999-99-0001",
                                                   "name": "N"})
        before = {cls: db.class_version(cls) for cls in
                  ("Teacher", "Person", "Section", "Course")}
        db.associate(teacher, "teaches", paper["s2"])
        assert db.class_version("Teacher") > before["Teacher"]
        assert db.class_version("Person") > before["Person"]
        assert db.class_version("Section") > before["Section"]
        assert db.class_version("Course") == before["Course"]

    def test_set_attribute_bumps_closure(self, paper):
        db = paper.db
        before = db.class_version("Person")
        db.set_attribute(paper.oid("t1"), "name", "Renamed")
        assert db.class_version("Person") > before

    def test_vector_shape_and_unknown_class(self, paper):
        db = paper.db
        vector = db.version_vector(("Course", "Teacher"))
        assert vector == (db.schema_version,
                          db.class_version("Course"),
                          db.class_version("Teacher"))
        # A class never touched reports version 0.
        fresh = Database(paper.db.schema.__class__("empty"))
        assert fresh.class_version("anything") == 0

    def test_versions_monotonic_per_event(self, paper):
        db = paper.db
        v1 = db.class_version("Course")
        db.insert("Course", "c_new", **{"c#": 900, "title": "X",
                                        "credit_hours": 1})
        v2 = db.class_version("Course")
        db.insert("Course", "c_new2", **{"c#": 901, "title": "Y",
                                         "credit_hours": 1})
        assert v1 < v2 < db.class_version("Course")

    def test_snapshot_pins_vector(self, paper):
        universe = Universe(paper.db)
        snap = universe.snapshot()
        pinned = snap.class_vector(("Teacher",))
        paper.db.insert("Teacher", "t_post", **{"SS#": "1", "name": "P"})
        assert snap.class_vector(("Teacher",)) == pinned
        assert universe.class_vector(("Teacher",)) != pinned


# ----------------------------------------------------------------------
# ResultCache unit behavior
# ----------------------------------------------------------------------


class TestResultCacheUnit:
    def test_miss_store_hit(self):
        cache = ResultCache(max_bytes=1024)
        assert cache.lookup("k", (1,)) is None
        assert cache.store("k", (1,), "value", 100)
        assert cache.lookup("k", (1,)) == "value"
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_vector_mismatch_drops_entry(self):
        cache = ResultCache(max_bytes=1024)
        cache.store("k", (1,), "value", 100)
        assert cache.lookup("k", (2,)) is None
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0
        assert cache.bytes_used == 0

    def test_lru_eviction_by_bytes(self):
        cache = ResultCache(max_bytes=250)
        cache.store("a", (1,), "A", 100)
        cache.store("b", (1,), "B", 100)
        cache.lookup("a", (1,))          # refresh a: b is now LRU tail
        cache.store("c", (1,), "C", 100)
        assert cache.lookup("b", (1,)) is None
        assert cache.lookup("a", (1,)) == "A"
        assert cache.lookup("c", (1,)) == "C"
        assert cache.stats()["evictions"] == 1
        assert cache.bytes_used <= 250

    def test_oversized_value_rejected(self):
        cache = ResultCache(max_bytes=100)
        assert not cache.store("big", (1,), "V", 1000)
        assert len(cache) == 0

    def test_drop_and_clear(self):
        cache = ResultCache(max_bytes=1024)
        cache.store("a", (1,), "A", 10)
        cache.store("b", (1,), "B", 10)
        cache.drop("a")
        assert cache.bytes_used == 10
        cache.drop("missing")            # no-op
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0

    def test_disabled_when_zero_budget(self):
        assert not ResultCache(max_bytes=0).enabled
        assert ResultCache(max_bytes=10, enabled=False).enabled is False


# ----------------------------------------------------------------------
# Fingerprints and eligibility
# ----------------------------------------------------------------------


class TestFingerprints:
    def test_where_differentiates(self):
        q1 = parse_query("context Teacher * Section")
        q2 = parse_query("context Teacher * Section "
                         "where Teacher.degree = 'MS'")
        assert fingerprint(q1.context, q1.where) != \
            fingerprint(q2.context, q2.where)

    def test_condition_differentiates(self):
        q1 = parse_query("context TA [GPA < 3.5] * Section")
        q2 = parse_query("context TA [GPA < 3.0] * Section")
        assert fingerprint(q1.context, q1.where) != \
            fingerprint(q2.context, q2.where)

    def test_select_does_not_differentiate(self):
        # The cache stores the context subdatabase; Select/operation
        # bind afterwards, so they share one entry.
        q1 = parse_query("context Teacher * Section")
        q2 = parse_query("context Teacher * Section select Teacher")
        assert fingerprint(q1.context, q1.where) == \
            fingerprint(q2.context, q2.where)

    def test_dependency_classes(self):
        flat = _flatten(parse_query(
            "context Grad * TA * Teacher * Section").context.chain)
        assert dependency_classes(flat.terms) == \
            ("Grad", "Section", "TA", "Teacher")

    def test_derived_refs_ineligible(self, paper):
        universe = Universe(paper.db)
        universe.register(build_sdb(paper))
        flat = _flatten(parse_query(
            "context SDB:Teacher * SDB:Section").context.chain)
        assert dependency_classes(flat.terms) is None


# ----------------------------------------------------------------------
# Cross-query caching through the evaluator
# ----------------------------------------------------------------------


QUERY = "context Teacher * Section * Course"


class TestCrossQueryCache:
    def _qp(self, paper, **kwargs):
        return QueryProcessor(Universe(paper.db),
                              cache_bytes=1 << 20, **kwargs)

    def test_repeat_query_hits(self, paper):
        qp = self._qp(paper)
        first = qp.execute(QUERY)
        second = qp.execute(QUERY)
        assert second.metrics.cache_hits == 1
        assert first.metrics.cache_hits == 0
        assert _labels(second.subdatabase) == _labels(first.subdatabase)
        # Each serving is an independent clone under its own name.
        assert second.subdatabase.name != first.subdatabase.name

    def test_unrelated_write_keeps_entry_warm(self, paper):
        qp = self._qp(paper)
        qp.execute(QUERY)
        paper.db.insert("Department", "d_new", name="Astronomy")
        result = qp.execute(QUERY)
        assert result.metrics.cache_hits == 1

    def test_related_write_invalidates(self, paper):
        qp = self._qp(paper)
        baseline = qp.execute(QUERY)
        teacher = paper.db.insert("Teacher", "t_new",
                                  **{"SS#": "7", "name": "New"})
        paper.db.associate(teacher, "teaches", paper["s2"])
        result = qp.execute(QUERY)
        assert result.metrics.cache_hits == 0
        assert result.metrics.cache_misses == 1
        assert len(result.subdatabase) == len(baseline.subdatabase) + 1
        stats = qp.evaluator.result_cache.stats()
        assert stats["invalidations"] >= 1

    def test_subclass_write_invalidates_superclass_query(self, paper):
        # Inserting a TA stamps Teacher (superclass closure), so a
        # Teacher-chain entry must miss — the TA joins Teacher's extent.
        qp = self._qp(paper)
        qp.execute(QUERY)
        paper.db.insert("TA", "ta_new")
        assert qp.execute(QUERY).metrics.cache_hits == 0

    def test_derived_ref_query_bypasses(self, paper):
        qp = self._qp(paper)
        qp.universe.register(build_sdb(paper))
        text = "context SDB:Teacher * SDB:Section"
        qp.execute(text)
        result = qp.execute(text)
        assert result.metrics.cache_hits == 0
        assert result.metrics.cache_misses == 0
        assert len(qp.evaluator.result_cache) == 0

    def test_hit_results_independent(self, paper):
        qp = self._qp(paper)
        first = qp.execute(QUERY).subdatabase
        second = qp.execute(QUERY).subdatabase
        assert first is not second
        assert {p for p in first.patterns} == {p for p in second.patterns}

    def test_budget_trip_never_populates(self, paper):
        qp = self._qp(paper)
        with pytest.raises(BudgetExceeded):
            qp.execute(QUERY, budget=QueryBudget(max_rows=1))
        assert len(qp.evaluator.result_cache) == 0
        # A later unbudgeted run computes and stores normally.
        qp.execute(QUERY)
        assert len(qp.evaluator.result_cache) == 1

    def test_cache_off_by_default(self, paper):
        qp = QueryProcessor(Universe(paper.db))
        qp.execute(QUERY)
        result = qp.execute(QUERY)
        assert result.metrics.cache_hits == 0
        assert len(qp.evaluator.result_cache) == 0
        assert not qp.evaluator.result_cache.enabled
        assert qp.evaluator.result_cache.max_bytes == DEFAULT_CACHE_BYTES

    def test_identical_results_cache_on_vs_off(self, paper):
        cold = QueryProcessor(Universe(paper.db))
        warm = self._qp(paper)
        for text in (QUERY, QUERY,
                     "context TA [GPA < 3.5] * Teacher * Section",
                     "context Course * Course_1 ^*"):
            assert _labels(warm.execute(text).subdatabase) == \
                _labels(cold.execute(text).subdatabase)


class TestSnapshotCoherence:
    def test_snapshot_session_hits_survive_live_writes(self, paper):
        engine = RuleEngine(paper.db, cache_bytes=1 << 20)
        session = engine.snapshot_session()
        pinned = _labels(session.execute(QUERY).subdatabase)
        teacher = paper.db.insert("Teacher", "t_live",
                                  **{"SS#": "8", "name": "Live"})
        paper.db.associate(teacher, "teaches", paper["s2"])
        again = session.execute(QUERY)
        # The snapshot's vector is constant: the entry stays valid and
        # the served value reflects the pinned state, not the write.
        assert again.metrics.cache_hits == 1
        assert _labels(again.subdatabase) == pinned
        # The live processor sees the write (its vector moved).
        live = engine.query(QUERY)
        assert len(live.subdatabase) == len(pinned) + 1


# ----------------------------------------------------------------------
# Satellite: per-class extent-condition cache in the evaluator
# ----------------------------------------------------------------------


class TestExtentCacheScoping:
    def test_unrelated_write_keeps_filtered_extents(self, paper):
        universe = Universe(paper.db)
        evaluator = PatternEvaluator(universe)
        query = parse_query(
            "context TA [GPA < 3.5] * Teacher * Section")
        evaluator.evaluate(query.context, query.where, name="r1")
        after_first = evaluator.extent_filter_evals
        assert after_first > 0
        evaluator.evaluate(query.context, query.where, name="r2")
        assert evaluator.extent_filter_evals == after_first
        # Previously ANY write cleared the whole per-evaluator extent
        # cache; now only the touched classes' entries go cold.
        paper.db.insert("Department", "d_new", name="Astronomy")
        evaluator.evaluate(query.context, query.where, name="r3")
        assert evaluator.extent_filter_evals == after_first
        paper.db.insert("TA", "ta_new")
        evaluator.evaluate(query.context, query.where, name="r4")
        assert evaluator.extent_filter_evals > after_first


# ----------------------------------------------------------------------
# Loop anchor-expansion memo
# ----------------------------------------------------------------------


class TestLoopMemo:
    def test_loop_body_memo_reused_across_queries(self, paper):
        universe = Universe(paper.db)
        evaluator = PatternEvaluator(universe, cache_bytes=1 << 20)
        query = parse_query("context Course * Course_1 ^*")
        baseline = evaluator.evaluate(query.context, query.where,
                                      name="l1")
        # Drop the query-level entry so the next run re-executes the
        # loop — the anchor-expansion memo must then serve the body.
        evaluator.result_cache.drop(
            ("query", fingerprint(query.context, query.where)))
        again = evaluator.evaluate(query.context, query.where, name="l2")
        assert evaluator.last_metrics.cache_memo_hits == 1
        assert _labels(again) == _labels(baseline)

    def test_loop_memo_invalidated_by_related_write(self, paper):
        universe = Universe(paper.db)
        evaluator = PatternEvaluator(universe, cache_bytes=1 << 20)
        query = parse_query("context Course * Course_1 ^*")
        evaluator.evaluate(query.context, query.where, name="l1")
        course = paper.db.insert("Course", "c_new",
                                 **{"c#": 950, "title": "New",
                                    "credit_hours": 3})
        paper.db.associate(course, "prereq", paper["c1"])
        evaluator.result_cache.drop(
            ("query", fingerprint(query.context, query.where)))
        again = evaluator.evaluate(query.context, query.where, name="l2")
        assert evaluator.last_metrics.cache_memo_hits == 0
        assert ("c_new", "c1", "c2") in again.labels()


# ----------------------------------------------------------------------
# Compact-store deltas (INSERT appends, DELETE remaps)
# ----------------------------------------------------------------------


class TestCompactDeltas:
    def _warm(self, db, text=QUERY):
        qp = QueryProcessor(Universe(db), compact=True)
        qp.execute(text)
        return qp

    def test_insert_appends_instead_of_rebuilding(self, paper):
        universe = Universe(paper.db)
        store = universe.compact
        a, b = ClassRef("Teacher"), ClassRef("Section")
        resolution = universe.resolve_edge(a, b)
        index = store.adjacency(resolution, True, a, b)
        n = len(index.src)
        built = store.indexes_built
        teacher = paper.db.insert("Teacher", "t_new",
                                  **{"SS#": "9", "name": "N"})
        assert store.tables_appended > 0
        assert store.indexes_appended > 0
        # Same index object, extended in place with one empty CSR row
        # for the fresh (linkless) object — nothing was rebuilt.
        assert store.adjacency(resolution, True, a, b) is index
        assert store.indexes_built == built
        assert len(index.src) == n + 1
        assert list(index.row(n)) == []
        # Once the object gains links the evaluator sees it normally.
        paper.db.associate(teacher, "teaches", paper["s2"])
        result = QueryProcessor(universe).execute(QUERY)
        fresh = QueryProcessor(Universe(paper.db)).execute(QUERY)
        assert _labels(result.subdatabase) == _labels(fresh.subdatabase)

    def test_identity_edge_append(self, paper):
        text = "context Grad * TA * Teacher"
        qp = self._warm(paper.db, text)
        paper.db.insert("TA", "ta_new")
        result = qp.execute(text)
        fresh = QueryProcessor(Universe(paper.db)).execute(text)
        assert _labels(result.subdatabase) == _labels(fresh.subdatabase)
        assert ("ta_new", "ta_new", "ta_new") in result.subdatabase.labels()

    def test_delete_remaps_instead_of_purging(self, paper):
        qp = self._warm(paper.db)
        store = qp.universe.compact
        paper.db.delete(paper.oid("t1"))
        assert store.tables_remapped > 0
        assert store.indexes_remapped > 0
        result = qp.execute(QUERY)
        fresh = QueryProcessor(Universe(paper.db)).execute(QUERY)
        assert _labels(result.subdatabase) == _labels(fresh.subdatabase)
        assert all("t1" not in row for row in result.subdatabase.labels())

    def test_interleaved_deltas_match_fresh_build(self, paper):
        qp = self._warm(paper.db)
        db = paper.db
        t = db.insert("Teacher", "t_a", **{"SS#": "11", "name": "A"})
        db.associate(t, "teaches", paper["s3"])
        db.delete(paper.oid("t2"))
        db.insert("TA", "ta_b")
        db.delete(paper.oid("ta1"))
        result = qp.execute(QUERY)
        fresh = QueryProcessor(Universe(db)).execute(QUERY)
        assert _labels(result.subdatabase) == _labels(fresh.subdatabase)


# ----------------------------------------------------------------------
# Planner statistics: per-class validity
# ----------------------------------------------------------------------


class TestPlannerStatistics:
    def test_extent_sizes_survive_unrelated_writes(self, paper):
        universe = Universe(paper.db)
        stats = Planner(universe).statistics
        calls = []
        original = paper.db.extent_size
        paper.db.extent_size = lambda cls: (calls.append(cls),
                                            original(cls))[1]
        ref = ClassRef("Teacher")
        size = stats.extent_size(ref)
        stats.extent_size(ref)
        assert calls == ["Teacher"]
        paper.db.insert("Department", "d_new", name="Astronomy")
        assert stats.extent_size(ref) == size
        assert calls == ["Teacher"]          # still warm
        paper.db.insert("TA", "ta_new")      # stamps Teacher
        assert stats.extent_size(ref) == size + 1
        assert calls == ["Teacher", "Teacher"]

    def test_fanout_survives_unrelated_writes(self, paper):
        universe = Universe(paper.db)
        stats = Planner(universe).statistics
        a, b = ClassRef("Teacher"), ClassRef("Section")
        resolution = universe.resolve_edge(a, b)
        fan = stats.fanout(a, resolution)
        paper.db.insert("Department", "d_new", name="Astronomy")
        assert stats.fanout(a, resolution) == fan
        teacher = paper.db.insert("Teacher", "t_new",
                                  **{"SS#": "12", "name": "N"})
        paper.db.associate(teacher, "teaches", paper["s2"])
        assert stats.fanout(a, resolution) != fan

    def test_plans_still_correct_after_writes(self, paper):
        qp = QueryProcessor(Universe(paper.db))
        before = qp.execute(QUERY)
        paper.db.insert("Department", "d_new", name="Astronomy")
        after = qp.execute(QUERY)
        assert _labels(after.subdatabase) == _labels(before.subdatabase)


# ----------------------------------------------------------------------
# Engine integration: derivation memo + versioned refresh skips
# ----------------------------------------------------------------------


class TestDerivationMemo:
    RULE = "if context Teacher * Section then TS (Teacher, Section)"

    def test_memo_serves_rederivation(self, paper):
        engine = RuleEngine(paper.db, cache_bytes=1 << 20)
        engine.add_rule(self.RULE)
        first = engine.query("context TS:Teacher * TS:Section")
        engine.universe.unregister("TS")
        second = engine.query("context TS:Teacher * TS:Section")
        assert engine.stats.derivation_memo_hits == 1
        assert engine.stats.total_derivations() == 1
        assert _labels(second.subdatabase) == _labels(first.subdatabase)

    def test_memo_invalidated_by_source_write(self, paper):
        engine = RuleEngine(paper.db, cache_bytes=1 << 20)
        engine.add_rule(self.RULE)
        engine.query("context TS:Teacher * TS:Section")
        teacher = paper.db.insert("Teacher", "t_new",
                                  **{"SS#": "13", "name": "N"})
        paper.db.associate(teacher, "teaches", paper["s2"])
        result = engine.query("context TS:Teacher * TS:Section")
        assert engine.stats.derivation_memo_hits == 0
        assert engine.stats.total_derivations() == 2
        assert ("t_new", "s2") in result.subdatabase.labels()

    def test_memo_invalidated_by_rule_change(self, paper):
        engine = RuleEngine(paper.db, cache_bytes=1 << 20)
        engine.add_rule(self.RULE)
        engine.query("context TS:Teacher * TS:Section")
        engine.add_rule("if context TA * Teacher * Section "
                        "then TS (Teacher, Section)")
        engine.query("context TS:Teacher * TS:Section")
        assert engine.stats.derivation_memo_hits == 0
        assert engine.stats.total_derivations() == 2

    def test_memo_off_without_cache(self, paper):
        engine = RuleEngine(paper.db)
        engine.add_rule(self.RULE)
        engine.query("context TS:Teacher * TS:Section")
        engine.universe.unregister("TS")
        engine.query("context TS:Teacher * TS:Section")
        assert engine.stats.derivation_memo_hits == 0
        assert engine.stats.total_derivations() == 2


class TestVersionedRefreshSkips:
    def test_untouched_maintainer_skipped(self, paper):
        engine = RuleEngine(paper.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then M (Teacher)")
        engine.add_rule("if context Teacher * Section * Course "
                        "then M (Teacher)")
        # First event initializes both maintainers.
        c1 = paper.db.insert("Course", "c_x",
                             **{"c#": 960, "title": "X",
                                "credit_hours": 3})
        skipped = engine.stats.refreshes_skipped_versioned
        # The second Course insert leaves the {Teacher, Section}
        # maintainer's vector untouched: its dispatch is skipped.
        paper.db.insert("Course", "c_y", **{"c#": 961, "title": "Y",
                                            "credit_hours": 3})
        assert engine.stats.refreshes_skipped_versioned > skipped
        assert "refreshes_skipped_versioned" in \
            engine.stats.snapshot()
        # The maintained value stays correct.
        expected = QueryProcessor(Universe(paper.db)).execute(
            "context Teacher * Section").subdatabase
        maintained = engine.universe.get_subdb("M")
        assert {row[0] for row in maintained.labels()} == \
            {row[0] for row in expected.labels()}
        assert c1 is not None
