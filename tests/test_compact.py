"""The interned/compact execution engine, tested differentially against
the original set-of-OIDs executor (``compact=False``).

Both executors must be observationally identical — same subdatabases,
same intensions, same loop semantics — under every planner strategy;
only speed differs.  Byte-level identity is asserted through the
canonical session serializer.
"""

import json

import pytest

from repro import QueryProcessor, RuleEngine, Universe
from repro.errors import CyclicDataError
from repro.model.database import Database
from repro.oql.planner import OPTIMIZE_MODES
from repro.storage.serialize import subdatabase_to_dict
from repro.university import build_paper_database, build_sdb
from repro.university.schema import build_university_schema


def _prereq_chain(n: int, cyclic: bool = False) -> Database:
    """``n`` courses in a linear prereq chain c{n-1} -> ... -> c0,
    optionally closed into a cycle."""
    db = Database(build_university_schema(), name=f"chain{n}")
    courses = [db.insert("Course", f"c{i}",
                         **{"c#": 1000 + i, "title": f"C{i}",
                            "credit_hours": 3})
               for i in range(n)]
    for i in range(1, n):
        db.associate(courses[i], "prereq", courses[i - 1])
    if cyclic:
        db.associate(courses[0], "prereq", courses[-1])
    return db


def _dump(subdb) -> bytes:
    doc = subdatabase_to_dict(subdb)
    doc["name"] = "_"  # anonymous results carry a per-query counter
    return json.dumps(doc, sort_keys=True).encode()


class TestLoopAliasGeneration:
    """The run-time determined intension: repeated loop slots get
    ``_1, _2, ...`` aliases, one per level actually reached."""

    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_aliases_at_four_levels(self, compact):
        db = _prereq_chain(5)
        qp = QueryProcessor(Universe(db), compact=compact)
        subdb = qp.execute("context Course * Course_1 ^*").subdatabase
        assert subdb.slot_names == (
            "Course", "Course_1", "Course_2", "Course_3", "Course_4")
        # The longest hierarchy is the full chain.
        assert ("c4", "c3", "c2", "c1", "c0") in subdb.labels()

    def test_both_paths_emit_identical_intensions(self):
        db = _prereq_chain(6)
        dumps = [
            _dump(QueryProcessor(Universe(db), compact=compact)
                  .execute("context Course * Course_1 ^*").subdatabase)
            for compact in (True, False)]
        assert dumps[0] == dumps[1]


class TestCycleHandling:
    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_on_cycle_error_raises(self, compact):
        db = _prereq_chain(3, cyclic=True)
        qp = QueryProcessor(Universe(db), compact=compact)
        with pytest.raises(CyclicDataError):
            qp.execute("context Course * Course_1 ^*")

    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_on_cycle_stop_truncates(self, compact):
        db = _prereq_chain(3, cyclic=True)
        qp = QueryProcessor(Universe(db), on_cycle="stop",
                            compact=compact)
        subdb = qp.execute("context Course * Course_1 ^*").subdatabase
        # Every hierarchy stops before revisiting its root: rows are
        # bounded by the cycle length and never repeat an instance.
        for row in subdb.labels():
            present = [x for x in row if x is not None]
            assert len(present) == len(set(present))
            assert len(present) <= 3

    def test_stop_results_identical_across_paths(self):
        db = _prereq_chain(4, cyclic=True)
        dumps = [
            _dump(QueryProcessor(Universe(db), on_cycle="stop",
                                 compact=compact)
                  .execute("context Course * Course_1 ^*").subdatabase)
            for compact in (True, False)]
        assert dumps[0] == dumps[1]


class TestBoundedVsUnbounded:
    """``^N`` with N at or past the data's depth equals ``^*`` — the
    loop bottoms out on the data, not the bound."""

    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    @pytest.mark.parametrize("bound", ["^4", "^7"])
    def test_deep_bound_equals_star(self, compact, bound):
        db = _prereq_chain(5)  # longest hierarchy: 4 hops
        qp = QueryProcessor(Universe(db), compact=compact)
        bounded = qp.execute(
            f"context Course * Course_1 {bound}").subdatabase
        star = qp.execute("context Course * Course_1 ^*").subdatabase
        assert _dump(bounded) == _dump(star)

    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_shallow_bound_differs(self, compact):
        qp = QueryProcessor(Universe(_prereq_chain(5)), compact=compact)
        one = qp.execute("context Course * Course_1 ^1").subdatabase
        star = qp.execute("context Course * Course_1 ^*").subdatabase
        assert len(one.slot_names) < len(star.slot_names)


# ---------------------------------------------------------------------------
# Differential: the paper's rules R1-R7 plus the braces query, compact
# vs set-based, under every planner strategy.
# ---------------------------------------------------------------------------

R6_TEXT = ("if context Grad * TA * Teacher * Section * Student * "
           "Grad_1 ^* then Grad_teaching_grad (Grad, Grad_)")
R7_TEXT = ("if context Grad * TA * Teacher * Section * Student * "
           "Grad_1 ^* then First_and_third (Grad, Grad_2)")
BRACES_QUERY = "context {{Grad} * Advising} * Faculty"

TARGETS = ["Teacher_course", "Suggest_offer", "Deps_need_res",
           "May_teach", "Grad_teaching_grad", "First_and_third"]


def _paper_engine(compact: bool, optimize: str) -> RuleEngine:
    data = build_paper_database()
    engine = RuleEngine(data.db, compact=compact)
    engine.universe.register(build_sdb(data))
    engine.evaluator.optimize = optimize
    engine.processor.evaluator.optimize = optimize
    engine.add_rule("if context Teacher * Section * Course "
                    "then Teacher_course (Teacher, Course)", label="R1")
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * "
        "Student where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context Department * Suggest_offer:Course "
        "where COUNT(Suggest_offer:Course by Department) > 20 "
        "then Deps_need_res (Department)", label="R3")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")
    engine.add_rule(R6_TEXT, label="R6")
    engine.add_rule(R7_TEXT, label="R7")
    return engine


class TestDifferentialPaperRules:
    @pytest.mark.parametrize("optimize", OPTIMIZE_MODES)
    def test_rules_byte_identical_across_executors(self, optimize):
        engines = [_paper_engine(compact, optimize)
                   for compact in (True, False)]
        for target in TARGETS:
            dumps = [_dump(engine.derive(target)) for engine in engines]
            assert dumps[0] == dumps[1], target

    @pytest.mark.parametrize("optimize", OPTIMIZE_MODES)
    def test_braces_query_byte_identical(self, optimize):
        dumps = [
            _dump(_paper_engine(compact, optimize)
                  .query(BRACES_QUERY).subdatabase)
            for compact in (True, False)]
        assert dumps[0] == dumps[1]

    def test_executors_differ_only_in_flag(self):
        fast = _paper_engine(True, "cost")
        slow = _paper_engine(False, "cost")
        assert fast.evaluator.compact and not slow.evaluator.compact
