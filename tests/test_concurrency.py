"""Concurrent evaluation: snapshot-isolated readers racing a writer,
plus query-budget cancellation of runaway evaluations.

The reader protocol under test (``subdb/snapshot.py``): a reader opens
``engine.snapshot_session()`` and evaluates queries — including
backward-chained rule targets — entirely against one pinned database
version.  A concurrent writer mutating the live database must never be
observed mid-batch, never cause a reader to raise, and never shift the
snapshot's version.

The budget protocol (``oql/budget.py``): an adversarial ``^*`` loop over
a complete prereq digraph has a factorial frontier and would effectively
never terminate; a 100 ms deadline must cancel it within 2x the deadline
and leave the universe fully usable.
"""

import json
import threading
import time

import pytest

from repro import QueryProcessor, RuleEngine, Universe, obs
from repro.model.database import Database
from repro.model.evolution import drop_association
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.storage.serialize import subdatabase_to_dict
from repro.subdb.snapshot import SnapshotExpiredError
from repro.university import build_paper_database, build_sdb
from repro.university.schema import build_university_schema


def _dump(subdb) -> bytes:
    doc = subdatabase_to_dict(subdb)
    doc["name"] = "_"
    return json.dumps(doc, sort_keys=True).encode()


def _paper_engine(compact: bool = True) -> RuleEngine:
    data = build_paper_database()
    engine = RuleEngine(data.db, compact=compact)
    engine.universe.register(build_sdb(data))
    engine.add_rule("if context Teacher * Section * Course "
                    "then Teacher_course (Teacher, Course)", label="R1")
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * "
        "Student where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context Department * Suggest_offer:Course "
        "where COUNT(Suggest_offer:Course by Department) > 20 "
        "then Deps_need_res (Department)", label="R3")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")
    engine.add_rule(
        "if context Grad * TA * Teacher * Section * Student * "
        "Grad_1 ^* then Grad_teaching_grad (Grad, Grad_)", label="R6")
    engine.add_rule(
        "if context Grad * TA * Teacher * Section * Student * "
        "Grad_1 ^* then First_and_third (Grad, Grad_2)", label="R7")
    return engine


# Queries the reader threads cycle through: base patterns and every
# paper rule target (the colon form forces backward chaining through
# the snapshot session's provider).
READER_QUERIES = [
    "context Teacher * Section * Course",
    "context Teacher_course:Teacher * Teacher_course:Course",
    "context Suggest_offer:Course",
    "context May_teach:TA",
    "context Grad_teaching_grad:Grad",
    "context First_and_third:Grad",
]


def _complete_prereq(n: int) -> Database:
    """A complete digraph on ``n`` courses: every course is a prereq of
    every other.  ``^*`` path enumeration over it is factorial."""
    db = Database(build_university_schema(), name=f"k{n}")
    courses = [db.insert("Course", f"c{i}",
                         **{"c#": 1000 + i, "title": f"C{i}",
                            "credit_hours": 3})
               for i in range(n)]
    for src in courses:
        for tgt in courses:
            if src is not tgt:
                db.associate(src, "prereq", tgt)
    return db


def _linear_prereq(n: int) -> Database:
    db = Database(build_university_schema(), name=f"chain{n}")
    courses = [db.insert("Course", f"c{i}",
                         **{"c#": 1000 + i, "title": f"C{i}",
                            "credit_hours": 3})
               for i in range(n)]
    for i in range(1, n):
        db.associate(courses[i], "prereq", courses[i - 1])
    return db


# ---------------------------------------------------------------------------
# Deterministic snapshot isolation (single-threaded).
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_snapshot_unaffected_by_later_mutations(self):
        engine = _paper_engine()
        db = engine.db
        course = next(iter(db.extent("Course")))
        qp = engine.snapshot_session()
        snap = qp.universe.snapshot
        before_extent = set(snap.extent("Course"))
        before_title = snap.attr_value(course, "title")
        before_result = _dump(qp.execute(READER_QUERIES[0]).subdatabase)

        new = db.insert("Course", "c999",
                        **{"c#": 9999, "title": "New", "credit_hours": 1})
        db.set_attribute(course, "title", "Changed")
        db.delete(new.oid)

        assert set(snap.extent("Course")) == before_extent
        assert snap.attr_value(course, "title") == before_title
        assert _dump(qp.execute(READER_QUERIES[0]).subdatabase) \
            == before_result
        qp.universe.close()

    def test_snapshot_pins_deleted_entity_and_links(self):
        db = _linear_prereq(4)
        universe = Universe(db)
        qp = QueryProcessor(universe.snapshot())
        snap = qp.universe.snapshot
        victim = next(oid for oid in db.extent("Course")
                      if db.entity(oid)["title"] == "C2")
        before = _dump(qp.execute("context Course * Course_1").subdatabase)
        db.delete(victim)
        assert not db.has(victim)
        # The snapshot still serves the entity, its attributes and its
        # prereq edges.
        assert snap.has(victim)
        assert snap.attr_value(victim, "title") == "C2"
        assert _dump(qp.execute("context Course * Course_1").subdatabase) \
            == before
        qp.universe.close()

    def test_derivation_confined_to_snapshot_registry(self):
        engine = _paper_engine()
        qp = engine.snapshot_session()
        qp.execute("context Suggest_offer:Course")
        assert "Suggest_offer" in qp.universe.subdb_names
        assert "Suggest_offer" not in engine.universe.subdb_names
        qp.universe.close()

    def test_snapshot_version_pinned(self):
        engine = _paper_engine()
        qp = engine.snapshot_session()
        pinned = qp.universe.pinned_version
        engine.db.set_attribute(next(iter(engine.db.extent("Course"))),
                                "title", "X")
        assert qp.universe.pinned_version == pinned
        assert qp.universe.snapshot.version == pinned
        qp.universe.close()

    def test_schema_evolution_poisons_unpinned_reads(self):
        db = _linear_prereq(3)
        universe = Universe(db)
        snap_universe = universe.snapshot()
        snap = snap_universe.snapshot
        pinned = set(snap.extent("Course"))  # pinned before the change
        drop_association(db, "Course", "prereq")
        # The pinned piece stays readable ...
        assert set(snap.extent("Course")) == pinned
        # ... but a fall-through read of an unpinned piece refuses.
        with pytest.raises(SnapshotExpiredError):
            snap.extent("Student")
        snap_universe.close()

    def test_close_is_idempotent(self):
        engine = _paper_engine()
        qp = engine.snapshot_session()
        qp.universe.close()
        qp.universe.close()


# ---------------------------------------------------------------------------
# Readers racing a writer.
# ---------------------------------------------------------------------------


class TestConcurrentReaders:
    READERS = 4
    ITERATIONS = 6
    WRITES = 400

    def test_readers_race_writer(self):
        engine = _paper_engine()
        db = engine.db
        course = next(iter(db.extent("Course")))
        original = (db.entity(course)["title"], db.entity(course)["c#"])

        stop = threading.Event()
        errors = []

        def writer():
            k = 0
            try:
                while not stop.is_set():
                    # Paired attribute update: readers must see the
                    # title and c# from the same batch, never a mix.
                    with db.batch():
                        db.set_attribute(course, "title", f"T{k}")
                        db.set_attribute(course, "c#", 9000 + k)
                    if k % 7 == 0:
                        tmp = db.insert(
                            "Course", f"tmp{k}",
                            **{"c#": 8000 + k, "title": f"Tmp{k}",
                               "credit_hours": 1})
                        db.associate(tmp, "prereq", course)
                        db.delete(tmp.oid)
                    k += 1
                    if k >= self.WRITES:
                        break
            except Exception as exc:  # pragma: no cover - fail the test
                errors.append(("writer", exc))
            finally:
                stop.set()

        def reader(index):
            try:
                iteration = 0
                while not stop.is_set() or iteration < 2:
                    qp = engine.snapshot_session()
                    try:
                        snap = qp.universe.snapshot
                        pinned = qp.universe.pinned_version
                        title = snap.attr_value(course, "title")
                        cnum = snap.attr_value(course, "c#")
                        if title.startswith("T") and title != original[0]:
                            k = int(title[1:])
                            assert cnum == 9000 + k, \
                                f"torn batch: {title!r} with c#={cnum}"
                        else:
                            assert (title, cnum) == original
                        query = READER_QUERIES[
                            (index + iteration) % len(READER_QUERIES)]
                        first = _dump(qp.execute(query).subdatabase)
                        second = _dump(qp.execute(query).subdatabase)
                        assert first == second, \
                            "snapshot evaluation not repeatable"
                        assert qp.universe.pinned_version == pinned
                    finally:
                        qp.universe.close()
                    iteration += 1
                    if iteration >= self.ITERATIONS and stop.is_set():
                        break
            except Exception as exc:
                errors.append((f"reader{index}", exc))
                stop.set()

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(self.READERS)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert not writer_thread.is_alive()
        assert not any(thread.is_alive() for thread in threads)

    def test_writer_not_blocked_by_idle_snapshot(self):
        """Holding a snapshot open must not stop writers (no long-held
        read lock): a full write runs while the snapshot exists."""
        engine = _paper_engine()
        qp = engine.snapshot_session()
        course = next(iter(engine.db.extent("Course")))
        engine.db.set_attribute(course, "title", "while-snapshotted")
        assert engine.db.entity(course)["title"] == "while-snapshotted"
        qp.universe.close()


# ---------------------------------------------------------------------------
# Budgets cancelling runaway evaluation.
# ---------------------------------------------------------------------------


class TestBudgetCancellation:
    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_deadline_cancels_unbounded_loop(self, compact):
        db = _complete_prereq(12)
        universe = Universe(db)
        qp = QueryProcessor(universe, on_cycle="stop", compact=compact)
        budget = QueryBudget(deadline_ms=100)
        with pytest.raises(BudgetExceeded) as info:
            qp.execute("context Course * Course_1 ^*", budget=budget)
        assert info.value.verdict == "deadline"
        # Partial metrics survive the trip.
        assert info.value.metrics is not None
        assert info.value.metrics.budget_verdict == "deadline"

        # The universe is uncorrupted: bounded queries on the tripped
        # universe match a freshly built twin byte for byte.
        fresh = QueryProcessor(Universe(_complete_prereq(12)),
                               on_cycle="stop", compact=compact)
        for query in ("context Course", "context Course * Course_1"):
            assert _dump(qp.execute(query).subdatabase) \
                == _dump(fresh.execute(query).subdatabase), query

    @pytest.mark.slow
    @pytest.mark.parametrize("compact", [True, False],
                             ids=["compact", "set-based"])
    def test_deadline_cancellation_is_prompt(self, compact):
        """Wall-clock half of the deadline contract, kept apart from
        the functional assertions above so loaded CI boxes don't flake
        the whole test: cancellation lands within a generous multiple
        of the budget, nowhere near the factorial full runtime."""
        qp = QueryProcessor(Universe(_complete_prereq(12)),
                            on_cycle="stop", compact=compact)
        budget = QueryBudget(deadline_ms=100)
        started = time.perf_counter()
        with pytest.raises(BudgetExceeded):
            qp.execute("context Course * Course_1 ^*", budget=budget)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        assert elapsed_ms < 2000.0, \
            f"cancelled after {elapsed_ms:.1f} ms (budget 100 ms)"

    def test_max_rows_verdict(self):
        db = _complete_prereq(8)
        qp = QueryProcessor(Universe(db))
        with pytest.raises(BudgetExceeded) as info:
            qp.execute("context Course * Course_1",
                       budget=QueryBudget(max_rows=5))
        assert info.value.verdict == "max_rows"

    def test_max_loop_levels_verdict(self):
        db = _linear_prereq(8)
        qp = QueryProcessor(Universe(db), on_cycle="stop")
        with pytest.raises(BudgetExceeded) as info:
            qp.execute("context Course * Course_1 ^*",
                       budget=QueryBudget(max_loop_levels=2))
        assert info.value.verdict == "max_loop_levels"

    def test_within_budget_queries_unaffected(self):
        db = _linear_prereq(6)
        qp = QueryProcessor(Universe(db), on_cycle="stop")
        budget = QueryBudget(deadline_ms=60_000, max_rows=1_000_000,
                             max_loop_levels=64)
        budgeted = _dump(qp.execute("context Course * Course_1 ^*",
                                    budget=budget).subdatabase)
        free = _dump(qp.execute("context Course * Course_1 ^*")
                     .subdatabase)
        assert budgeted == free

    def test_engine_query_budget_and_recovery(self):
        engine = _paper_engine()
        with pytest.raises(BudgetExceeded):
            engine.query("context Student * Section * Course",
                         budget=QueryBudget(max_rows=1))
        # The ambient budget is cleared: the same query now completes.
        result = engine.query("context Student * Section * Course")
        assert len(result.subdatabase) > 1
        assert engine.evaluator.budget is None


# ---------------------------------------------------------------------------
# Tracing under concurrency.
# ---------------------------------------------------------------------------


def _parallel_processor(workers: int = 4) -> QueryProcessor:
    """A processor over a database big enough to take the partitioned
    path (the paper DB's extents are below the parallel threshold)."""
    from repro.university.generator import (GeneratorConfig,
                                            generate_university)
    db = generate_university(GeneratorConfig(), seed=13).db
    processor = QueryProcessor(Universe(db), compact=True,
                               workers=workers)
    processor.evaluator.min_parallel_rows = 1
    return processor


class TestTracingConcurrency:
    @pytest.fixture(autouse=True)
    def _no_tracer_leak(self):
        yield
        obs.uninstall()

    def test_one_partition_span_per_partition(self):
        from tests.test_tracing import all_spans, assert_well_formed
        processor = _parallel_processor(workers=4)
        tracer = obs.install()
        processor.execute("context Student * Section * Course")
        metrics = processor.evaluator.last_metrics
        assert metrics.workers_used > 1
        assert metrics.partitions
        root = tracer.recorder.get(metrics.trace_id)
        assert root is not None
        assert_well_formed(root)
        partitions = [span for span in all_spans(root)
                      if span.name == "partition"]
        # One span per partition record, indexes 0..K-1 exactly once,
        # every one a descendant of the query root (reachable via
        # root.walk() — cross-thread stitching worked).
        assert len(partitions) == len(metrics.partitions)
        assert sorted(span.attrs["partition"] for span in partitions) \
            == list(range(len(partitions)))
        by_index = {span.attrs["partition"]: span for span in partitions}
        for record in metrics.partitions:
            span = by_index[record["partition"]]
            assert span.counters["anchor_rows"] == record["anchor_rows"]
            assert span.counters.get("rows_out", 0) == record["rows_out"]

    def test_traces_well_formed_under_reader_writer_stress(self):
        from tests.test_tracing import assert_well_formed
        engine = _paper_engine()
        db = engine.db
        course = next(iter(db.extent("Course")))
        tracer = obs.install()
        stop = threading.Event()
        errors = []

        def writer():
            try:
                for k in range(100):
                    db.set_attribute(course, "title", f"T{k}")
            except Exception as exc:  # pragma: no cover
                errors.append(("writer", exc))
            finally:
                stop.set()

        def reader(index):
            try:
                iteration = 0
                while not stop.is_set() or iteration < 2:
                    qp = engine.snapshot_session()
                    try:
                        query = READER_QUERIES[
                            (index + iteration) % len(READER_QUERIES)]
                        qp.execute(query)
                    finally:
                        qp.universe.close()
                    iteration += 1
                    if iteration >= 4 and stop.is_set():
                        break
            except Exception as exc:
                errors.append((f"reader{index}", exc))
                stop.set()

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(3)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        roots = tracer.recorder.traces()
        assert roots, "no traces recorded under stress"
        for root in roots:
            assert_well_formed(root)


class TestPartitionMetrics:
    """Regression: ``EvaluationMetrics`` used to be reused across nested
    and successive evaluations, so a provider-driven cascade (or simply
    re-running a query on a reused evaluator) appended partition and
    plan records onto the previous query's metrics."""

    def test_partitions_not_accumulated_across_queries(self):
        processor = _parallel_processor(workers=4)
        processor.execute("context Student * Section * Course")
        first = processor.evaluator.last_metrics
        assert first.partitions
        processor.execute("context Student * Section * Course")
        second = processor.evaluator.last_metrics
        assert second is not first
        assert len(second.partitions) == len(first.partitions)
        assert sorted(p["partition"] for p in second.partitions) \
            == list(range(len(second.partitions)))

    def test_cascade_derivation_metrics_are_per_query(self):
        from repro.university.generator import (GeneratorConfig,
                                                generate_university)
        db = generate_university(GeneratorConfig(), seed=13).db
        engine = RuleEngine(db, compact=True, workers=4)
        engine.evaluator.min_parallel_rows = 1
        engine.add_rule("if context Student * Section "
                        "then Enrolled (Student, Section)")
        engine.add_rule("if context Enrolled:Section * Course "
                        "then Offered (Section, Course)")
        result = engine.query("context Offered:Section * Course")
        metrics = result.metrics
        # The outer query's record only: each partition index at most
        # once, not the concatenation of every nested evaluation.
        assert sorted(p["partition"] for p in metrics.partitions) \
            == list(range(len(metrics.partitions)))
        assert len(metrics.plans) <= 2
