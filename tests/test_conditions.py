"""Unit tests for condition evaluation semantics."""

import pytest

from repro.errors import OQLSemanticError
from repro.oql.ast import (
    AttrRef,
    BoolOp,
    Comparison,
    Literal,
    NotOp,
)
from repro.oql.conditions import compare, evaluate


class TestCompare:
    def test_equality_within_types(self):
        assert compare(3, "=", 3)
        assert not compare(3, "=", 4)
        assert compare("a", "=", "a")

    def test_equality_across_types_is_false(self):
        assert not compare(3, "=", "3")
        assert compare(3, "!=", "3")

    def test_null_equality(self):
        assert compare(None, "=", None)
        assert compare(None, "!=", 3)
        assert not compare(None, "=", 3)

    def test_null_ordering_is_false(self):
        assert not compare(None, "<", 3)
        assert not compare(3, ">=", None)

    def test_numeric_ordering_mixes_int_float(self):
        assert compare(3, "<", 3.5)
        assert compare(4.0, ">=", 4)

    def test_string_ordering(self):
        assert compare("apple", "<", "banana")

    def test_ordering_across_types_raises(self):
        with pytest.raises(OQLSemanticError):
            compare(3, "<", "x")

    def test_bool_is_not_a_number_for_ordering(self):
        with pytest.raises(OQLSemanticError):
            compare(True, "<", 3)

    def test_all_ordering_operators(self):
        assert compare(1, "<", 2)
        assert compare(2, "<=", 2)
        assert compare(3, ">", 2)
        assert compare(3, ">=", 3)

    def test_unknown_operator(self):
        with pytest.raises(OQLSemanticError):
            compare(1, "~", 2)


class TestEvaluate:
    def getter(self, values):
        return lambda ref: values.get(ref.attr)

    def test_comparison_with_getter(self):
        cond = Comparison(AttrRef("x"), ">", Literal(10))
        assert evaluate(cond, self.getter({"x": 11}))
        assert not evaluate(cond, self.getter({"x": 9}))

    def test_attr_to_attr(self):
        cond = Comparison(AttrRef("x"), "=", AttrRef("y"))
        assert evaluate(cond, self.getter({"x": 5, "y": 5}))

    def test_and_or(self):
        cond = BoolOp("and", (
            Comparison(AttrRef("x"), ">", Literal(0)),
            BoolOp("or", (
                Comparison(AttrRef("y"), "=", Literal("a")),
                Comparison(AttrRef("y"), "=", Literal("b")),
            ))))
        assert evaluate(cond, self.getter({"x": 1, "y": "b"}))
        assert not evaluate(cond, self.getter({"x": 1, "y": "c"}))

    def test_not(self):
        cond = NotOp(Comparison(AttrRef("x"), "=", Literal(1)))
        assert evaluate(cond, self.getter({"x": 2}))

    def test_missing_attribute_value_behaves_as_null(self):
        cond = Comparison(AttrRef("x"), "<", Literal(3))
        assert not evaluate(cond, self.getter({}))
        is_null = Comparison(AttrRef("x"), "=", Literal(None))
        assert evaluate(is_null, self.getter({}))
