"""Unit tests for condition evaluation semantics."""

import pytest

from repro.errors import OQLSemanticError
from repro.oql.ast import (
    AttrRef,
    BoolOp,
    Comparison,
    Literal,
    NotOp,
)
from repro.oql.conditions import compare, evaluate


class TestCompare:
    def test_equality_within_types(self):
        assert compare(3, "=", 3)
        assert not compare(3, "=", 4)
        assert compare("a", "=", "a")

    def test_equality_across_types_is_false(self):
        assert not compare(3, "=", "3")
        assert compare(3, "!=", "3")

    def test_null_equality(self):
        assert compare(None, "=", None)
        assert compare(None, "!=", 3)
        assert not compare(None, "=", 3)

    def test_null_ordering_is_false(self):
        assert not compare(None, "<", 3)
        assert not compare(3, ">=", None)

    def test_numeric_ordering_mixes_int_float(self):
        assert compare(3, "<", 3.5)
        assert compare(4.0, ">=", 4)

    def test_string_ordering(self):
        assert compare("apple", "<", "banana")

    def test_ordering_across_types_raises(self):
        with pytest.raises(OQLSemanticError):
            compare(3, "<", "x")

    def test_bool_is_not_a_number_for_ordering(self):
        with pytest.raises(OQLSemanticError):
            compare(True, "<", 3)

    def test_all_ordering_operators(self):
        assert compare(1, "<", 2)
        assert compare(2, "<=", 2)
        assert compare(3, ">", 2)
        assert compare(3, ">=", 3)

    def test_unknown_operator(self):
        with pytest.raises(OQLSemanticError):
            compare(1, "~", 2)


class TestEvaluate:
    def getter(self, values):
        return lambda ref: values.get(ref.attr)

    def test_comparison_with_getter(self):
        cond = Comparison(AttrRef("x"), ">", Literal(10))
        assert evaluate(cond, self.getter({"x": 11}))
        assert not evaluate(cond, self.getter({"x": 9}))

    def test_attr_to_attr(self):
        cond = Comparison(AttrRef("x"), "=", AttrRef("y"))
        assert evaluate(cond, self.getter({"x": 5, "y": 5}))

    def test_and_or(self):
        cond = BoolOp("and", (
            Comparison(AttrRef("x"), ">", Literal(0)),
            BoolOp("or", (
                Comparison(AttrRef("y"), "=", Literal("a")),
                Comparison(AttrRef("y"), "=", Literal("b")),
            ))))
        assert evaluate(cond, self.getter({"x": 1, "y": "b"}))
        assert not evaluate(cond, self.getter({"x": 1, "y": "c"}))

    def test_not(self):
        cond = NotOp(Comparison(AttrRef("x"), "=", Literal(1)))
        assert evaluate(cond, self.getter({"x": 2}))

    def test_missing_attribute_value_behaves_as_null(self):
        cond = Comparison(AttrRef("x"), "<", Literal(3))
        assert not evaluate(cond, self.getter({}))
        is_null = Comparison(AttrRef("x"), "=", Literal(None))
        assert evaluate(is_null, self.getter({}))


# ---------------------------------------------------------------------------
# Property tests: the edge semantics the value indexes must mirror.
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.oql.conditions import (  # noqa: E402
    FLIP_OP,
    and_conjuncts,
    literal_comparison,
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=5),
)
ORDERING = ("<", "<=", ">", ">=")


class TestCompareProperties:
    @settings(max_examples=300, deadline=None)
    @given(scalars, scalars)
    def test_equality_never_raises_and_negates_exactly(self, a, b):
        """``=``/``!=`` are total across types and exact complements."""
        assert compare(a, "=", b) == (not compare(a, "!=", b))
        assert compare(a, "=", b) == compare(b, "=", a)

    @settings(max_examples=300, deadline=None)
    @given(scalars, st.sampled_from(ORDERING))
    def test_null_ordering_is_always_false(self, a, op):
        assert not compare(None, op, a)
        assert not compare(a, op, None)

    @settings(max_examples=300, deadline=None)
    @given(st.integers(-1000, 1000), st.booleans(),
           st.sampled_from(ORDERING))
    def test_bool_never_orders_against_numbers(self, n, flag, op):
        """``bool`` is its own type for ordering even though Python
        would happily compare it — the paper's type-comparability rule,
        and the exact contract the index type census enforces."""
        with pytest.raises(OQLSemanticError):
            compare(n, op, flag)
        with pytest.raises(OQLSemanticError):
            compare(flag, op, float(n))

    @settings(max_examples=300, deadline=None)
    @given(scalars, st.sampled_from(ORDERING), scalars)
    def test_ordering_is_total_or_raises_symmetrically(self, a, op, b):
        """An ordering either answers for both operand orders or raises
        for both — mirroring a comparison (via FLIP_OP) can never turn
        an error into an answer or vice versa."""
        try:
            forward = compare(a, op, b)
        except OQLSemanticError:
            with pytest.raises(OQLSemanticError):
                compare(b, FLIP_OP[op], a)
            return
        assert compare(b, FLIP_OP[op], a) == forward

    @settings(max_examples=200, deadline=None)
    @given(st.one_of(st.integers(-100, 100),
                     st.floats(-100, 100, allow_nan=False)),
           st.one_of(st.integers(-100, 100),
                     st.floats(-100, 100, allow_nan=False)))
    def test_numbers_always_order(self, a, b):
        assert compare(a, "<", b) == (a < b)
        assert compare(a, ">=", b) == (a >= b)


class TestConjunctHelpers:
    def test_and_conjuncts_flattens_nested_ands_in_order(self):
        c1 = Comparison(AttrRef("x"), "=", Literal(1))
        c2 = Comparison(AttrRef("y"), ">", Literal(2))
        c3 = NotOp(c1)
        nested = BoolOp("and", (BoolOp("and", (c1, c2)), c3))
        assert and_conjuncts(nested) == [c1, c2, c3]

    def test_and_conjuncts_leaves_or_alone(self):
        disj = BoolOp("or", (Comparison(AttrRef("x"), "=", Literal(1)),
                             Comparison(AttrRef("y"), "=", Literal(2))))
        assert and_conjuncts(disj) == [disj]

    def test_literal_comparison_normalizes_both_orders(self):
        right = Comparison(AttrRef("x"), "<", Literal(5))
        left = Comparison(Literal(5), ">", AttrRef("x"))
        assert literal_comparison(right) == ("x", "<", 5)
        assert literal_comparison(left) == ("x", "<", 5)

    def test_literal_comparison_rejects_other_shapes(self):
        qualified = Comparison(AttrRef("x", owner="T"), "=", Literal(1))
        attr_attr = Comparison(AttrRef("x"), "=", AttrRef("y"))
        assert literal_comparison(qualified) is None
        assert literal_comparison(attr_attr) is None
        assert literal_comparison(NotOp(attr_attr)) is None
