"""Unit tests for the control strategies of Section 6.

The central scenario is the paper's Ra→Rb→Rc→Rd chain::

    DB --Ra--> REa --Rb--> REb --Rc--> REc --Rd--> REd

with Ra, Rb backward and Rc, Rd forward under the POSTGRES-style
rule-oriented strategy: after a base update, REd silently serves stale
data until somebody queries REb.  The result-oriented strategy removes
the flaw: REd (pre-evaluated) is refreshed by the same rules running
forward, while REb (post-evaluated) is computed on demand.
"""

import pytest

from repro.rules.control import EvaluationMode, RuleChainingMode
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database

CHAIN = [
    ("Ra", "if context Teacher * Section then REa (Teacher, Section)"),
    ("Rb", "if context REa:Teacher * REa:Section then REb (Teacher)"),
    ("Rc", "if context REb:Teacher then REc (Teacher)"),
    ("Rd", "if context REc:Teacher then REd (Teacher)"),
]


def add_teacher(data, name="Newman"):
    with data.db.batch():
        teacher = data.db.insert("Teacher", name=name, degree="PhD",
                                 **{"SS#": "999"})
        data.db.associate(teacher, "teaches", data["s4"])
    return teacher


def red_names(engine):
    result = engine.query("context REd:Teacher select name display")
    return set(result.table.column("REd:Teacher.name"))


class TestRuleOrientedBaseline:
    @pytest.fixture
    def setup(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="rule")
        modes = {"Ra": RuleChainingMode.BACKWARD,
                 "Rb": RuleChainingMode.BACKWARD,
                 "Rc": RuleChainingMode.FORWARD,
                 "Rd": RuleChainingMode.FORWARD}
        for label, text in CHAIN:
            engine.add_rule(text, label=label, mode=modes[label])
        return data, engine

    def test_initial_derivation(self, setup):
        data, engine = setup
        assert "Smith" in red_names(engine)

    def test_forward_results_go_stale_after_base_update(self, setup):
        data, engine = setup
        red_names(engine)  # materialize
        add_teacher(data)
        assert engine.is_stale("REd")
        assert engine.is_stale("REc")

    def test_stale_forward_result_is_served(self, setup):
        """The observable inconsistency: the stored REd misses the new
        teacher."""
        data, engine = setup
        red_names(engine)
        add_teacher(data)
        assert "Newman" not in red_names(engine)

    def test_querying_reb_triggers_forward_cascade(self, setup):
        data, engine = setup
        red_names(engine)
        add_teacher(data)
        engine.query("context REb:Teacher select name")
        assert not engine.is_stale("REd")
        assert "Newman" in red_names(engine)

    def test_backward_results_not_preserved(self, setup):
        data, engine = setup
        engine.query("context REb:Teacher select name")
        assert not engine.universe.has_subdb("REb")
        assert not engine.universe.has_subdb("REa")

    def test_forward_rule_with_base_reads_triggers_directly(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="rule")
        engine.add_rule("if context Teacher * Section then F (Teacher)",
                        label="F", mode=RuleChainingMode.FORWARD)
        engine.derive("F")
        add_teacher(data)
        assert not engine.is_stale("F")
        assert engine.stats.derivations["F"] >= 2

    def test_set_mode_reassigns_all_rules_of_target(self, setup):
        data, engine = setup
        engine.set_mode("REb", RuleChainingMode.FORWARD)
        assert engine.controller.mode_of("REb") is \
            RuleChainingMode.FORWARD


class TestResultOriented:
    @pytest.fixture
    def setup(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="result")
        modes = {"Ra": EvaluationMode.POST_EVALUATED,
                 "Rb": EvaluationMode.POST_EVALUATED,
                 "Rc": EvaluationMode.POST_EVALUATED,
                 "Rd": EvaluationMode.PRE_EVALUATED}
        for label, text in CHAIN:
            engine.add_rule(text, label=label, mode=modes[label])
        engine.refresh()
        return data, engine

    def test_pre_evaluated_result_refreshed_on_update(self, setup):
        data, engine = setup
        add_teacher(data)
        assert not engine.is_stale("REd")
        assert "Newman" in red_names(engine)

    def test_same_rules_ran_forward_for_the_pre_result(self, setup):
        data, engine = setup
        before = engine.stats.derivations["REd"]
        add_teacher(data)
        assert engine.stats.derivations["REd"] == before + 1

    def test_post_evaluated_result_recomputed_on_demand(self, setup):
        data, engine = setup
        add_teacher(data)
        result = engine.query("context REb:Teacher select name display")
        assert "Newman" in result.output
        assert not engine.is_stale("REb")

    def test_no_stale_value_ever_served(self, setup):
        data, engine = setup
        for i in range(3):
            add_teacher(data, name=f"New{i}")
            assert f"New{i}" in red_names(engine)

    def test_update_to_unrelated_class_is_ignored(self, setup):
        data, engine = setup
        before = engine.stats.derivations["REd"]
        data.db.insert("Department", name="Physics", college="X")
        assert engine.stats.derivations["REd"] == before

    def test_mode_default_is_post(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="result")
        engine.add_rule(CHAIN[0][1], label="Ra")
        assert engine.controller.mode_of("REa") is \
            EvaluationMode.POST_EVALUATED

    def test_set_mode(self, setup):
        data, engine = setup
        engine.set_mode("REb", EvaluationMode.PRE_EVALUATED)
        add_teacher(data)
        # Now REb is also maintained eagerly.
        assert engine.universe.has_subdb("REb")
        assert not engine.is_stale("REb")

    def test_post_results_invalidated_not_recomputed(self, setup):
        data, engine = setup
        engine.query("context REa:Teacher select name")  # memoize REa
        derivations = engine.stats.derivations["REa"]
        add_teacher(data)
        # REa was needed to refresh REd, so it was re-derived once as an
        # intermediate — but only once, driven by the forward pass.
        assert engine.stats.derivations["REa"] == derivations + 1


class TestStrategyComparison:
    """The two strategies agree on *values*; they differ in staleness
    windows and when work happens."""

    def test_same_final_answer(self):
        results = {}
        for controller, modes in [
            ("rule", {"Ra": RuleChainingMode.BACKWARD,
                      "Rb": RuleChainingMode.BACKWARD,
                      "Rc": RuleChainingMode.FORWARD,
                      "Rd": RuleChainingMode.FORWARD}),
            ("result", {"Ra": EvaluationMode.POST_EVALUATED,
                        "Rb": EvaluationMode.POST_EVALUATED,
                        "Rc": EvaluationMode.POST_EVALUATED,
                        "Rd": EvaluationMode.PRE_EVALUATED}),
        ]:
            data = build_paper_database()
            engine = RuleEngine(data.db, controller=controller)
            for label, text in CHAIN:
                engine.add_rule(text, label=label, mode=modes[label])
            add_teacher(data)
            engine.query("context REb:Teacher select name")  # sync point
            results[controller] = red_names(engine)
        assert results["rule"] == results["result"]
