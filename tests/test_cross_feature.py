"""Cross-feature integration: combinations the individual suites don't
exercise — derived loop results queried externally, algebra over rule
outputs, persistence of loop-derived hierarchies, incremental control
with mixed rule sets, metrics through the engine."""

import pytest

from repro import RuleEngine, algebra
from repro.storage import load_session, save_session
from repro.university import build_paper_database


@pytest.fixture
def data():
    return build_paper_database()


@pytest.fixture
def engine(data):
    return RuleEngine(data.db)


class TestLoopResultsAsSources:
    def test_query_joins_base_class_to_hierarchy_class(self, engine):
        engine.add_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)", label="R6")
        # GG:Grad ranges over every hierarchy level; join to Advising.
        result = engine.query(
            "context GG:Grad * Advising * Faculty "
            "select Grad[name] Faculty[name] display")
        rows = set(result.table.rows)
        assert ("Quinn", "Su") in rows       # ta1 (level 0) advised by f1
        assert ("Adams", "Lam") in rows      # g1 (deep level) advised by f2

    def test_rule_over_hierarchy_levels(self, engine):
        engine.add_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)", label="R6")
        engine.add_rule(
            "if context GG:Grad_2 then Deep_students (Grad_2)",
            label="DS")
        subdb = engine.derive("Deep_students")
        assert subdb.labels() == {("g1",)}

    def test_hierarchy_persists_and_reloads(self, engine, data,
                                            tmp_path):
        engine.add_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)", label="R6")
        engine.derive("GG")
        restored = load_session(save_session(engine, tmp_path / "s.json"))
        subdb = restored.universe.get_subdb("GG")
        assert subdb.slot_names == ("Grad", "Grad_1", "Grad_2")
        assert ("ta1", "ta2", "g1") in subdb.labels()


class TestAlgebraOverRuleOutputs:
    def test_difference_of_two_rule_variants(self, engine):
        engine.add_rule("if context Teacher * Section * Course "
                        "then All_tc (Teacher, Course)", label="A")
        engine.add_rule("if context Teacher * Section * Course "
                        "[c# >= 6000] then Grad_tc (Teacher, Course)",
                        label="B")
        all_tc = engine.derive("All_tc")
        grad_tc = engine.derive("Grad_tc")
        undergrad_only = algebra.difference(all_tc, grad_tc)
        courses = {l[1] for l in undergrad_only.labels()}
        assert "c1" not in courses
        assert "c2" in courses

    def test_union_matches_multi_rule_target(self, engine):
        # algebra.union of two single-rule targets == one two-rule target.
        engine.add_rule("if context TA * Teacher * Section then A_ts "
                        "(TA, Section)", label="A")
        engine.add_rule("if context RA * Grad * Section then B_ts "
                        "(RA, Section)", label="B")
        engine.add_rule("if context TA * Teacher * Section then Both "
                        "(TA, Section)", label="C1")
        engine.add_rule("if context RA * Grad * Section then Both "
                        "(RA, Section)", label="C2")
        merged_by_engine = engine.derive("Both")
        assert merged_by_engine.slot_names == ("TA", "Section", "RA")
        a = engine.derive("A_ts")   # slots (TA, Section)
        b = engine.derive("B_ts")   # slots (RA, Section)
        union_labels = {(ta, s, None) for ta, s in a.labels()} | \
                       {(None, s, ra) for ra, s in b.labels()}
        assert merged_by_engine.labels() == union_labels


class TestIncrementalWithMixedRuleSets:
    def test_eligible_and_ineligible_targets_coexist(self, data):
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="ok")
        engine.add_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39 "
            "then Agg (Course)", label="agg")
        engine.refresh()
        data.db.associate(data["t4"], "teaches", data["s5"])
        # TS incrementally, Agg via full re-derivation; both fresh.
        assert engine.stats.incremental_refreshes >= 1
        ts = engine.universe.get_subdb("TS")
        assert ("t4", "s5") in ts.labels()
        assert engine.universe.has_subdb("Agg")


class TestMetricsThroughEngine:
    def test_query_metrics_available(self, engine):
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher)", label="TS")
        result = engine.query("context TS:Teacher select name")
        assert result.metrics.patterns_out == len(result.subdatabase)

    def test_explain_then_query_consistency(self, engine):
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher)", label="TS")
        plan = engine.explain("context TS:Teacher select name")
        assert plan.derivation_order == ["TS"]
        engine.query("context TS:Teacher select name")
        plan_after = engine.explain("context TS:Teacher select name")
        assert plan_after.derivation_order == []
