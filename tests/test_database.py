"""Unit tests for the extensional store: extents, links, constraints,
and the update journal."""

import pytest

from repro.errors import (
    ConstraintViolationError,
    TypeMismatchError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownObjectError,
)
from repro.model.database import Database, UpdateKind
from repro.university.schema import build_university_schema


@pytest.fixture
def db():
    return Database(build_university_schema())


class TestInsert:
    def test_insert_returns_entity(self, db):
        t = db.insert("Teacher", name="Smith")
        assert t.cls == "Teacher"
        assert t["name"] == "Smith"

    def test_unknown_class(self, db):
        with pytest.raises(UnknownClassError):
            db.insert("Ghost")

    def test_unknown_attribute(self, db):
        with pytest.raises(UnknownAttributeError):
            db.insert("Teacher", salary=10)

    def test_inherited_attribute_accepted(self, db):
        ta = db.insert("TA", name="Quinn", GPA=3.5, degree="BS")
        assert ta["GPA"] == 3.5

    def test_domain_validation(self, db):
        with pytest.raises(TypeMismatchError):
            db.insert("Teacher", name=42)

    def test_labels_on_oids(self, db):
        t = db.insert("Teacher", "t1")
        assert repr(t.oid) == "t1"

    def test_len_counts_objects(self, db):
        db.insert("Teacher")
        db.insert("Course")
        assert len(db) == 2


class TestExtents:
    def test_direct_extent(self, db):
        t = db.insert("Teacher")
        ta = db.insert("TA")
        assert t.oid in db.direct_extent("Teacher")
        assert ta.oid not in db.direct_extent("Teacher")

    def test_extent_includes_subclasses(self, db):
        ta = db.insert("TA")
        assert ta.oid in db.extent("Teacher")
        assert ta.oid in db.extent("Grad")
        assert ta.oid in db.extent("Person")

    def test_extent_excludes_siblings(self, db):
        ra = db.insert("RA")
        assert ra.oid not in db.extent("Teacher")

    def test_is_instance_of(self, db):
        ta = db.insert("TA")
        assert db.is_instance_of(ta.oid, "Student")
        assert not db.is_instance_of(ta.oid, "Faculty")

    def test_unknown_class_extent(self, db):
        with pytest.raises(UnknownClassError):
            db.extent("Ghost")


class TestDelete:
    def test_delete_removes_from_extent(self, db):
        t = db.insert("Teacher")
        db.delete(t.oid)
        assert t.oid not in db.extent("Teacher")

    def test_delete_removes_links_both_directions(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section", **{"section#": 1})
        db.associate(t, "teaches", s)
        db.delete(s.oid)
        link = db.schema.resolve_link("Teacher", "Section").link
        assert db.linked(t.oid, link) == set()

    def test_delete_unknown_oid(self, db):
        t = db.insert("Teacher")
        db.delete(t.oid)
        with pytest.raises(UnknownObjectError):
            db.delete(t.oid)


class TestAttributes:
    def test_get_set(self, db):
        t = db.insert("Teacher", name="Smith")
        db.set_attribute(t.oid, "name", "Jones")
        assert db.get_attribute(t.oid, "name") == "Jones"

    def test_set_validates_domain(self, db):
        t = db.insert("Teacher", name="Smith")
        with pytest.raises(TypeMismatchError):
            db.set_attribute(t.oid, "name", 3)

    def test_set_unknown_attribute(self, db):
        t = db.insert("Teacher")
        with pytest.raises(UnknownAttributeError):
            db.set_attribute(t.oid, "salary", 1)

    def test_unset_attribute_reads_none(self, db):
        t = db.insert("Teacher")
        assert db.get_attribute(t.oid, "name") is None

    def test_attributes_copy_is_isolated(self, db):
        t = db.insert("Teacher", name="Smith")
        snapshot = t.attributes
        snapshot["name"] = "Hacked"
        assert t["name"] == "Smith"


class TestLinks:
    def test_associate_and_traverse(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        db.associate(t, "teaches", s)
        link = db.schema.resolve_link("Teacher", "Section").link
        assert db.linked(t.oid, link, from_owner=True) == {s.oid}
        assert db.linked(s.oid, link, from_owner=False) == {t.oid}

    def test_inherited_association_usable_by_subclass(self, db):
        ta = db.insert("TA")
        s = db.insert("Section")
        db.associate(ta, "teaches", s)  # inherited from Teacher
        link = db.schema.resolve_link("Teacher", "Section").link
        assert (ta.oid, s.oid) in db.link_pairs(link)

    def test_target_membership_checked(self, db):
        t = db.insert("Teacher")
        c = db.insert("Course")
        with pytest.raises(ConstraintViolationError):
            db.associate(t, "teaches", c)

    def test_unknown_association_name(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        with pytest.raises(UnknownAttributeError):
            db.associate(t, "advises", s)

    def test_single_valued_cardinality_enforced(self, db):
        tr = db.insert("Transcript")
        s1 = db.insert("Student")
        s2 = db.insert("Student")
        db.associate(tr, "student", s1)
        with pytest.raises(ConstraintViolationError):
            db.associate(tr, "student", s2)

    def test_single_valued_relink_same_target_is_idempotent(self, db):
        tr = db.insert("Transcript")
        s1 = db.insert("Student")
        db.associate(tr, "student", s1)
        db.associate(tr, "student", s1)  # no error
        link = next(l for l in db.schema.aggregations()
                    if l.key == ("Transcript", "student"))
        assert db.link_count(link) == 1

    def test_dissociate(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        db.associate(t, "teaches", s)
        db.dissociate(t, "teaches", s)
        link = db.schema.resolve_link("Teacher", "Section").link
        assert db.linked(t.oid, link) == set()

    def test_dissociate_nonexistent_link(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        with pytest.raises(ConstraintViolationError):
            db.dissociate(t, "teaches", s)

    def test_neighbors_identity(self, db):
        from repro.model.schema import ResolvedLink
        ta = db.insert("TA")
        identity = ResolvedLink("identity")
        assert db.neighbors(ta.oid, identity) == {ta.oid}

    def test_neighbors_respects_resolution_direction(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        db.associate(t, "teaches", s)
        fwd = db.schema.resolve_link("Teacher", "Section")
        rev = db.schema.resolve_link("Section", "Teacher")
        assert db.neighbors(t.oid, fwd, forward=True) == {s.oid}
        assert db.neighbors(s.oid, rev, forward=True) == {t.oid}
        assert db.neighbors(s.oid, fwd, forward=False) == {t.oid}


class TestJournal:
    def test_version_bumps_on_every_mutation(self, db):
        v0 = db.version
        t = db.insert("Teacher")
        s = db.insert("Section")
        db.associate(t, "teaches", s)
        db.set_attribute(t.oid, "name", "X")
        db.dissociate(t, "teaches", s)
        db.delete(t.oid)
        assert db.version == v0 + 6

    def test_events_carry_kind_and_classes(self, db):
        events = []
        db.add_listener(events.append)
        ta = db.insert("TA")
        assert events[-1].kind is UpdateKind.INSERT
        assert set(events[-1].classes) == {"TA", "Grad", "Teacher",
                                           "Student", "Person"}

    def test_associate_event_covers_both_ends(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        events = []
        db.add_listener(events.append)
        db.associate(t, "teaches", s)
        assert {"Teacher", "Section"} <= set(events[-1].classes)

    def test_remove_listener(self, db):
        events = []
        db.add_listener(events.append)
        db.remove_listener(events.append.__self__ if False
                           else events.append)
        db.insert("Teacher")
        assert events == []

    def test_stats(self, db):
        t = db.insert("Teacher")
        s = db.insert("Section")
        db.associate(t, "teaches", s)
        stats = db.stats()
        assert stats["objects"] == 2
        assert stats["links"] == 1


class TestBatch:
    def test_batch_emits_single_combined_event(self, db):
        events = []
        db.add_listener(events.append)
        with db.batch():
            t = db.insert("Teacher")
            s = db.insert("Section")
            db.associate(t, "teaches", s)
        assert len(events) == 1
        assert events[0].kind is UpdateKind.BATCH
        assert {"Teacher", "Section"} <= set(events[0].classes)

    def test_batch_still_bumps_version_per_mutation(self, db):
        v0 = db.version
        with db.batch():
            db.insert("Teacher")
            db.insert("Teacher")
        assert db.version == v0 + 2

    def test_nested_batches_flatten(self, db):
        events = []
        db.add_listener(events.append)
        with db.batch():
            db.insert("Teacher")
            with db.batch():
                db.insert("Course")
        assert len(events) == 1

    def test_empty_batch_emits_nothing(self, db):
        events = []
        db.add_listener(events.append)
        with db.batch():
            pass
        assert events == []

    def test_event_emitted_even_when_body_raises(self, db):
        events = []
        db.add_listener(events.append)
        with pytest.raises(RuntimeError):
            with db.batch():
                db.insert("Teacher")
                raise RuntimeError("boom")
        # The successful mutations still propagate to listeners.
        assert len(events) == 1
