"""Unit tests for the relational algebra and the Datalog baseline."""

import pytest

from repro.baselines.datalog import (
    Atom,
    DatalogProgram,
    DatalogRule,
    is_variable,
    naive_eval,
    seminaive_eval,
    transitive_closure_program,
)
from repro.baselines.export import extent_as_relation, links_as_relation
from repro.baselines.relational import Relation
from repro.errors import (
    OQLSemanticError,
    RuleSemanticError,
    UnknownAssociationError,
)
from repro.university import build_paper_database


class TestRelation:
    def test_construction_checks_arity(self):
        with pytest.raises(OQLSemanticError):
            Relation("r", ("a", "b"), [(1,)])

    def test_select(self):
        r = Relation("r", ("a",), [(1,), (2,), (3,)])
        assert r.select(lambda row: row[0] > 1).rows == {(2,), (3,)}

    def test_project_reorders_and_dedups(self):
        r = Relation("r", ("a", "b"), [(1, 9), (2, 9)])
        assert r.project(["b"]).rows == {(9,)}
        assert r.project(["b", "a"]).rows == {(9, 1), (9, 2)}

    def test_project_unknown_column(self):
        r = Relation("r", ("a",), [])
        with pytest.raises(OQLSemanticError):
            r.project(["z"])

    def test_rename(self):
        r = Relation("r", ("a", "b"), [(1, 2)])
        assert r.rename({"a": "x"}).columns == ("x", "b")

    def test_union_and_difference(self):
        a = Relation("a", ("x",), [(1,), (2,)])
        b = Relation("b", ("x",), [(2,), (3,)])
        assert a.union(b).rows == {(1,), (2,), (3,)}
        assert a.difference(b).rows == {(1,)}

    def test_union_arity_mismatch(self):
        a = Relation("a", ("x",), [])
        b = Relation("b", ("x", "y"), [])
        with pytest.raises(OQLSemanticError):
            a.union(b)

    def test_natural_join(self):
        left = Relation("l", ("a", "b"), [(1, 2), (3, 4)])
        right = Relation("r", ("b", "c"), [(2, 9), (4, 8), (5, 7)])
        joined = left.join(right)
        assert joined.columns == ("a", "b", "c")
        assert joined.rows == {(1, 2, 9), (3, 4, 8)}

    def test_join_without_shared_columns_is_cross_product(self):
        left = Relation("l", ("a",), [(1,), (2,)])
        right = Relation("r", ("b",), [(3,)])
        assert left.join(right).rows == {(1, 3), (2, 3)}

    def test_contains_and_len(self):
        r = Relation("r", ("a",), [(1,)])
        assert (1,) in r
        assert len(r) == 1


class TestDatalogBasics:
    def test_variable_convention(self):
        assert is_variable("X") and is_variable("Next")
        assert not is_variable("x") and not is_variable(3)

    def test_unsafe_rule_rejected(self):
        with pytest.raises(RuleSemanticError):
            DatalogRule(Atom("p", ("X", "Y")), (Atom("q", ("X",)),))

    def test_single_rule_join(self):
        # p(X, Z) :- e(X, Y), e(Y, Z)
        program = DatalogProgram(
            [DatalogRule(Atom("p", ("X", "Z")),
                         (Atom("e", ("X", "Y")), Atom("e", ("Y", "Z"))))],
            {"e": {(1, 2), (2, 3)}})
        assert naive_eval(program)["p"] == {(1, 3)}

    def test_constants_in_body(self):
        program = DatalogProgram(
            [DatalogRule(Atom("p", ("X",)), (Atom("e", (1, "X")),))],
            {"e": {(1, 2), (3, 4)}})
        assert naive_eval(program)["p"] == {(2,)}

    def test_constants_in_head(self):
        program = DatalogProgram(
            [DatalogRule(Atom("p", ("ok", "X")), (Atom("e", ("X",)),))],
            {"e": {(1,)}})
        assert naive_eval(program)["p"] == {("ok", 1)}

    def test_repeated_variable_in_atom(self):
        # p(X) :- e(X, X)
        program = DatalogProgram(
            [DatalogRule(Atom("p", ("X",)), (Atom("e", ("X", "X")),))],
            {"e": {(1, 1), (1, 2)}})
        assert naive_eval(program)["p"] == {(1,)}


class TestTransitiveClosure:
    EDGES = [(1, 2), (2, 3), (3, 4), (2, 5)]
    EXPECTED = {(1, 2), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4),
                (2, 5), (3, 4)}

    def test_naive(self):
        program = transitive_closure_program(self.EDGES)
        assert naive_eval(program)["tc"] == self.EXPECTED

    def test_seminaive_agrees_with_naive(self):
        program = transitive_closure_program(self.EDGES)
        assert seminaive_eval(program)["tc"] == \
            naive_eval(program)["tc"]

    def test_cyclic_graph_terminates(self):
        program = transitive_closure_program([(1, 2), (2, 1)])
        result = seminaive_eval(program)["tc"]
        assert result == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_empty_edges(self):
        program = transitive_closure_program([])
        assert seminaive_eval(program)["tc"] == set()

    def test_long_chain(self):
        edges = [(i, i + 1) for i in range(30)]
        program = transitive_closure_program(edges)
        result = seminaive_eval(program)["tc"]
        assert len(result) == 30 * 31 // 2


class TestExport:
    def test_links_as_relation(self):
        data = build_paper_database()
        rel = links_as_relation(data.db, "Course", "prereq")
        assert len(rel) == 2
        values = {(a, b) for a, b in rel}
        assert (data.oid("c4").value, data.oid("c1").value) in values

    def test_unknown_link(self):
        data = build_paper_database()
        with pytest.raises(UnknownAssociationError):
            links_as_relation(data.db, "Course", "nothing")

    def test_extent_as_relation(self):
        data = build_paper_database()
        rel = extent_as_relation(data.db, "Department")
        assert len(rel) == 3


class TestDatalogParser:
    def test_parse_and_evaluate_tc(self):
        from repro.baselines.parser import parse_datalog
        program = parse_datalog("""
            % the classic transitive-closure program
            edge(1, 2).  edge(2, 3).
            edge(3, 4).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
        """)
        result = seminaive_eval(program)["tc"]
        assert (1, 4) in result
        assert len(result) == 6

    def test_constants_and_strings(self):
        from repro.baselines.parser import parse_datalog
        program = parse_datalog("""
            parent('ann', 'bob').
            parent('bob', 'cid').
            grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        """)
        assert naive_eval(program)["grandparent"] == {("ann", "cid")}

    def test_lowercase_idents_are_constants(self):
        from repro.baselines.parser import parse_datalog
        program = parse_datalog("""
            likes(ann, bob).
            mutual(X) :- likes(X, bob).
        """)
        assert naive_eval(program)["mutual"] == {("ann",)}

    def test_negative_numbers(self):
        from repro.baselines.parser import parse_datalog
        program = parse_datalog("p(-3). q(X) :- p(X).")
        assert naive_eval(program)["q"] == {(-3,)}

    def test_fact_with_variable_rejected(self):
        from repro.baselines.parser import parse_datalog
        from repro.errors import OQLSyntaxError
        with pytest.raises(OQLSyntaxError):
            parse_datalog("edge(X, 2).")

    def test_unsafe_rule_rejected(self):
        from repro.baselines.parser import parse_datalog
        from repro.errors import RuleSemanticError
        with pytest.raises(RuleSemanticError):
            parse_datalog("p(X, Y) :- q(X).")

    def test_syntax_errors_carry_line(self):
        from repro.baselines.parser import parse_datalog
        from repro.errors import OQLSyntaxError
        with pytest.raises(OQLSyntaxError):
            parse_datalog("p(1)")  # missing period

    def test_comments_ignored(self):
        from repro.baselines.parser import parse_datalog
        program = parse_datalog("% nothing\np(1). % trailing\n")
        assert program.facts["p"] == {(1,)}
