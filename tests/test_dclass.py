"""Unit tests for domain classes."""

import pytest

from repro.errors import TypeMismatchError
from repro.model.dclass import BOOLEAN, DClass, INTEGER, REAL, STRING


class TestBuiltins:
    def test_integer_accepts_int(self):
        assert INTEGER.validate(7) == 7

    def test_integer_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            INTEGER.validate("7")

    def test_integer_rejects_bool(self):
        # bool subclasses int in Python, but a boolean in an integer
        # attribute is almost always an application bug.
        with pytest.raises(TypeMismatchError):
            INTEGER.validate(True)

    def test_string_accepts_str(self):
        assert STRING.validate("x") == "x"

    def test_string_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            STRING.validate(7)

    def test_real_accepts_float_and_int(self):
        assert REAL.validate(3.5) == 3.5
        assert REAL.validate(3) == 3

    def test_real_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            REAL.validate(False)

    def test_boolean_accepts_bool(self):
        assert BOOLEAN.validate(True) is True

    def test_boolean_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            BOOLEAN.validate(1)


class TestCustomDomains:
    def test_check_predicate_enforced(self):
        grade = DClass("grade", str,
                       check=lambda v: v in {"A", "B", "C", "D", "F"})
        assert grade.validate("B") == "B"
        with pytest.raises(TypeMismatchError):
            grade.validate("Z")

    def test_check_runs_after_type(self):
        positive = DClass("positive", int, check=lambda v: v > 0)
        with pytest.raises(TypeMismatchError):
            positive.validate("not an int")
        with pytest.raises(TypeMismatchError):
            positive.validate(-3)
        assert positive.validate(3) == 3

    def test_repr(self):
        assert "grade" in repr(DClass("grade", str))
