"""Unit tests for rule application: projection, induced generalization,
derived direct associations, attribute subsetting, and multi-rule union."""

import pytest

from repro.oql.evaluator import PatternEvaluator
from repro.rules.derivation import apply_rule, derive_target
from repro.rules.rule import parse_rule
from repro.subdb.refs import ClassRef
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def ctx():
    data = build_paper_database()
    universe = Universe(data.db)
    universe.register(build_sdb(data))
    return data, universe, PatternEvaluator(universe)


class TestApplyRule:
    def test_figure_43_derivation_over_sdb(self, ctx):
        """R1 applied to the subdatabase SDB yields exactly Figure 4.3."""
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher, Course)")
        result = apply_rule(rule, evaluator)
        assert result.labels() == {("t1", "c1"), ("t2", "c1"),
                                   ("t2", "c2")}

    def test_unreferenced_class_dropped(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher, Course)")
        result = apply_rule(rule, evaluator)
        assert result.slot_names == ("Teacher", "Course")

    def test_new_direct_association_derived(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher, Course)")
        result = apply_rule(rule, evaluator)
        edge = result.intension.edge_between(0, 1)
        assert edge.kind == "derived"

    def test_existing_direct_association_kept(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Teacher * Section * Course "
            "then TS (Teacher, Section)")
        result = apply_rule(rule, evaluator)
        edge = result.intension.edge_between(0, 1)
        assert edge.kind == "base"
        assert edge.label == "teaches"

    def test_induced_generalization_recorded(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher, Course)")
        result = apply_rule(rule, evaluator)
        info = result.derived_info["Teacher"]
        assert info.ref == ClassRef("Teacher", "Teacher_course")
        assert info.source == ClassRef("Teacher", "SDB")

    def test_attribute_subsetting_recorded(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Teacher * Section * Course "
            "then TC (Teacher [SS#, degree], Course)")
        result = apply_rule(rule, evaluator)
        assert result.derived_info["Teacher"].visible_attrs == \
            ("SS#", "degree")

    def test_patterns_deduplicated_after_projection(self, ctx):
        _, universe, evaluator = ctx
        # Teacher t2 teaches one section of two courses: projecting to
        # (Teacher,) alone dedups to one pattern per teacher.
        rule = parse_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then T (Teacher)")
        result = apply_rule(rule, evaluator)
        assert result.labels() == {("t1",), ("t2",)}

    def test_where_clause_filters_before_projection(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)")
        result = apply_rule(rule, evaluator)
        assert result.labels() == {("c1",)}

    def test_all_levels_expansion(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)")
        result = apply_rule(rule, evaluator)
        assert result.slot_names == ("Grad", "Grad_1", "Grad_2")
        assert ("ta1", "ta2", "g1") in result.labels()

    def test_hierarchy_edges_between_levels(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)")
        result = apply_rule(rule, evaluator)
        assert result.intension.edge_between(0, 1).kind == "derived"
        assert result.intension.edge_between(1, 2).kind == "derived"

    def test_unreached_level_yields_null_slot(self, ctx):
        _, universe, evaluator = ctx
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then Deep (Grad, Grad_9)")
        result = apply_rule(rule, evaluator)
        assert "Grad_9" in result.slot_names
        assert all(p[result.intension.index_of("Grad_9")] is None
                   for p in result.patterns)


class TestDeriveTarget:
    def test_union_of_r4_r5(self, ctx):
        _, universe, evaluator = ctx
        r2 = parse_rule(
            "if context Department[name = 'CIS'] * Course * Section * "
            "Student where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)")
        universe.register(apply_rule(r2, evaluator))
        r4 = parse_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)")
        r5 = parse_rule(
            "if context Grad * Transcript[grade >= 3.0] * "
            "Course[c# < 5000] then May_teach (Grad, Course)")
        result = derive_target([r4, r5], evaluator)
        assert set(result.slot_names) == {"TA", "Course", "Grad"}
        ta_rows = {(l[0], l[1]) for l in result.labels()
                   if l[0] is not None}
        assert ta_rows == {("ta1", "c1"), ("ta2", "c1")}
        grad_rows = {(l[2], l[1]) for l in result.labels()
                     if l[2] is not None}
        assert grad_rows == {("g1", "c2"), ("ta1", "c2"), ("ta2", "c2"),
                             ("g1", "c3")}

    def test_mismatched_target_rejected(self, ctx):
        _, _, evaluator = ctx
        a = parse_rule("if context Teacher * Section then X (Teacher)")
        b = parse_rule("if context Teacher * Section then Y (Teacher)")
        from repro.errors import RuleSemanticError
        with pytest.raises(RuleSemanticError):
            derive_target([a, b], evaluator)

    def test_empty_rule_list_rejected(self, ctx):
        _, _, evaluator = ctx
        from repro.errors import RuleSemanticError
        with pytest.raises(RuleSemanticError):
            derive_target([], evaluator)

    def test_single_rule_passthrough(self, ctx):
        _, _, evaluator = ctx
        rule = parse_rule("if context Teacher * Section then X (Teacher)")
        assert derive_target([rule], evaluator).name == "X"
