"""Unit tests for the metadata dictionary."""

import pytest

from repro.model.dictionary import Dictionary
from repro.university.schema import build_university_schema


@pytest.fixture
def catalog():
    return Dictionary(build_university_schema())


class TestClassInfo:
    def test_structure(self, catalog):
        info = catalog.class_info("TA")
        assert info["name"] == "TA"
        assert set(info["superclasses"]) == {"Grad", "Teacher", "Student",
                                             "Person"}
        assert info["attributes"]["GPA"] == "real"

    def test_subclasses_listed(self, catalog):
        info = catalog.class_info("Student")
        assert set(info["subclasses"]) == {"Grad", "Undergrad", "TA", "RA"}

    def test_associations_rendered(self, catalog):
        info = catalog.class_info("RA")
        assert any("enrolled" in assoc for assoc in info["associations"])


class TestAttributeOwners:
    def test_unique_attribute(self, catalog):
        assert catalog.attribute_owners("project") == ["RA"]

    def test_inherited_attribute_has_many_owners(self, catalog):
        owners = catalog.attribute_owners("GPA")
        assert "Student" in owners
        assert "TA" in owners
        assert "Teacher" not in owners

    def test_unknown_attribute_has_no_owners(self, catalog):
        assert catalog.attribute_owners("nonexistent") == []


class TestRenderings:
    def test_sdiagram_mentions_all_classes(self, catalog):
        text = catalog.render_sdiagram()
        for cls in catalog.schema.eclass_names:
            assert cls in text

    def test_sdiagram_shows_link_kinds(self, catalog):
        text = catalog.render_sdiagram()
        assert "A:teaches[*]" in text
        assert "G ->" in text

    def test_inherited_view_rendering(self, catalog):
        text = catalog.render_inherited_view("RA")
        assert "inherited from Student" in text
        assert "enrolled" in text
