"""Differential stress harness: seeded random queries and rules over a
generated University database, executed by four independent engines —
the compact interned executor, the original set-of-OIDs executor, the
thread-partitioned executor (4 workers), and the process-partitioned
executor (4 worker processes over shared-memory planes) — which must
agree byte for byte on every case (through the canonical session
serializer).

The case count is tunable: ``DIFFERENTIAL_CASES`` in the environment
(default 100; CI runs the quick tier on push and 1000 nightly).  Every
case is derived from one integer seed, so a failure report is fully
reproducible; on mismatch the harness *shrinks* the failing query —
dropping the where clause, the loop, the conditions, the braces, then
trailing chain links — and reports the simplest spec that still
disagrees, alongside its seed.
"""

import json
import os
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import pytest

from repro import QueryProcessor, RuleEngine, Universe, obs
from repro.errors import ReproError
from repro.oql.subscribe import SubscriptionManager, canonical_rows
from repro.storage.serialize import subdatabase_to_dict
from repro.university.generator import GeneratorConfig, generate_university

pytestmark = pytest.mark.differential

CASES = int(os.environ.get("DIFFERENTIAL_CASES", "100"))
DB_SEED = 7


def _dump(subdb) -> bytes:
    doc = subdatabase_to_dict(subdb)
    doc["name"] = "_"
    return json.dumps(doc, sort_keys=True).encode()


# Class adjacency of the University schema as the evaluator resolves it
# (directly, by inheritance, or by generalization).  TA--Section is
# deliberately absent: a TA is both a Teacher (teaches) and a Grad
# (enrolled), so that edge is ambiguous and correctly rejected.
ADJACENT: Dict[str, Tuple[str, ...]] = {
    "Teacher": ("Section", "TA", "Faculty"),
    "Faculty": ("Section", "Teacher", "Advising"),
    "TA": ("Teacher", "Grad"),
    "Student": ("Section", "Department", "Transcript", "Grad"),
    "Grad": ("Section", "Department", "Student", "TA", "Advising",
             "Transcript"),
    "Undergrad": ("Section",),
    "Section": ("Course", "Student", "Teacher"),
    "Course": ("Section", "Department", "Transcript"),
    "Department": ("Course", "Student"),
    "Transcript": ("Student", "Grad", "Course"),
    "Advising": ("Faculty", "Grad"),
}

# Intra-class condition templates (all attributes populated by the
# generator, values chosen so predicates are selective but non-empty).
CONDITIONS: Dict[str, Tuple[str, ...]] = {
    "Course": ("c# < 5000", "credit_hours >= 3", "c# >= 2000"),
    "Section": ("section# = 1", "textbook = 'Book3'"),
    "Transcript": ("grade >= 3.0", "letter = 'A'"),
    "Department": ("college = 'College1'",),
    "Teacher": ("degree = 'PhD'",),
    "Faculty": ("rank = 'Full'",),
    "Student": ("GPA >= 2.5",),
    "Grad": ("GPA >= 3.0",),
}


@dataclass
class QuerySpec:
    """One generated case, kept structured so it can be shrunk."""

    chain: List[str]
    ops: List[str] = field(default_factory=list)  # len == len(chain)-1
    conds: Dict[int, str] = field(default_factory=dict)
    braces: bool = False
    loop: Optional[str] = None  # loop count spec over a Course tail
    where: Optional[str] = None

    def text(self) -> str:
        terms = []
        for index, cls in enumerate(self.chain):
            cond = self.conds.get(index)
            terms.append(f"{cls}[{cond}]" if cond else cls)
        if self.braces and len(terms) >= 3:
            body = (f"{{{terms[0]} {self.ops[0]} {terms[1]}}} "
                    + " ".join(f"{op} {term}" for op, term
                               in zip(self.ops[1:], terms[2:])))
        else:
            body = terms[0] + "".join(
                f" {op} {term}" for op, term in zip(self.ops, terms[1:]))
        if self.loop is not None:
            body += f" * {self.chain[-1]}_1 ^{self.loop}"
        text = f"context {body}"
        if self.where:
            text += f" where {self.where}"
        return text

    def shrink_variants(self) -> List["QuerySpec"]:
        """Strictly simpler specs, most aggressive simplification last."""
        out = []
        if self.where:
            out.append(replace(self, where=None))
        if self.loop is not None:
            out.append(replace(self, loop=None))
        for index in self.conds:
            conds = dict(self.conds)
            del conds[index]
            out.append(replace(self, conds=conds))
        if self.braces:
            out.append(replace(self, braces=False))
        if len(self.chain) > 1:
            out.append(QuerySpec(chain=self.chain[:-1],
                                 ops=self.ops[:-1],
                                 conds={i: c for i, c in self.conds.items()
                                        if i < len(self.chain) - 1},
                                 braces=self.braces
                                 and len(self.chain) - 1 >= 3,
                                 loop=None, where=None))
        return out


def _random_spec(rng: random.Random) -> QuerySpec:
    length = rng.randint(1, 4)
    chain = [rng.choice(sorted(ADJACENT))]
    for _ in range(length - 1):
        options = [cls for cls in ADJACENT[chain[-1]]
                   if cls not in chain]  # distinct slots keep it simple
        if not options:
            break
        chain.append(rng.choice(options))
    spec = QuerySpec(chain=chain)
    spec.ops = ["!" if rng.random() < 0.20 else "*"
                for _ in range(len(chain) - 1)]
    for index, cls in enumerate(chain):
        if cls in CONDITIONS and rng.random() < 0.25:
            spec.conds[index] = rng.choice(CONDITIONS[cls])
    if len(chain) >= 3 and rng.random() < 0.15:
        spec.braces = True
    if chain[-1] == "Course" and rng.random() < 0.5 \
            and spec.ops and set(spec.ops) == {"*"}:
        spec.loop = rng.choice(["*", "2", "3"])
    elif len(chain) == 1 and chain[0] == "Course":
        if rng.random() < 0.4:
            spec.loop = rng.choice(["*", "2"])
    if (spec.loop is None and len(chain) >= 2 and not spec.braces
            and "!" not in spec.ops and rng.random() < 0.15):
        spec.where = (f"COUNT({chain[-1]} by {chain[0]}) > "
                      f"{rng.randint(0, 3)}")
    return spec


# ---------------------------------------------------------------------------
# Executors.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def university_db():
    return generate_university(GeneratorConfig(), seed=DB_SEED).db


@pytest.fixture(scope="module")
def executors(university_db):
    """(label, QueryProcessor) tuples sharing one base database: the
    serial compact executor, the set-based original, the thread
    partitioner, and the process partitioner over shared-memory planes
    — the 3-way (serial/threads/processes) parity tier plus the
    set-based cross-check."""
    compact = QueryProcessor(Universe(university_db), compact=True)
    setbased = QueryProcessor(Universe(university_db), compact=False)
    parallel = QueryProcessor(Universe(university_db), compact=True,
                              workers=4)
    parallel.evaluator.min_parallel_rows = 1
    process = QueryProcessor(Universe(university_db), compact=True,
                             workers=4, worker_mode="process")
    process.evaluator.min_parallel_rows = 1
    yield [("compact", compact), ("set-based", setbased),
           ("parallel-4", parallel), ("process-4", process)]
    process.close()


def _outcome(processor: QueryProcessor, text: str):
    """(kind, payload): a dump on success, the error type on rejection.

    All executors must agree on *both* — a query one engine answers and
    another rejects is as much a bug as differing rows."""
    try:
        return ("ok", _dump(processor.execute(text).subdatabase))
    except ReproError as exc:
        return ("error", type(exc).__name__)


def _check(executors, spec: QuerySpec):
    """None if all executors agree, else a description of the split."""
    text = spec.text()
    outcomes = [(label, _outcome(processor, text))
                for label, processor in executors]
    reference = outcomes[0][1]
    if all(outcome == reference for _, outcome in outcomes[1:]):
        return None
    return " / ".join(f"{label}: {kind}"
                      + (f"[{payload}]" if kind == "error" else
                         f"[{len(payload)}B]")
                      for label, (kind, payload) in outcomes)


def _shrink(executors, spec: QuerySpec) -> QuerySpec:
    """Greedily simplify while the disagreement persists."""
    current = spec
    progress = True
    while progress:
        progress = False
        for variant in current.shrink_variants():
            if _check(executors, variant) is not None:
                current = variant
                progress = True
                break
    return current


class TestDifferentialQueries:
    def test_seeded_random_queries_agree(self, executors):
        failures = []
        for case in range(CASES):
            seed = DB_SEED * 100_000 + case
            spec = _random_spec(random.Random(seed))
            split = _check(executors, spec)
            if split is None:
                continue
            minimal = _shrink(executors, spec)
            failures.append(
                f"seed={seed}\n  query:   {spec.text()}\n"
                f"  minimal: {minimal.text()}\n"
                f"  split:   {_check(executors, minimal) or split}")
            if len(failures) >= 5:
                break
        assert not failures, (
            f"{len(failures)} differential mismatch(es) over {CASES} "
            "cases:\n" + "\n".join(failures))

    def test_known_hard_shapes_agree(self, executors):
        """Deterministic regression shapes: every feature class the
        random generator draws from, pinned."""
        shapes = [
            "context Student * Section * Course",
            "context Student ! Section",
            "context Grad[GPA >= 3.0] * Transcript[grade >= 3.0] "
            "* Course[c# < 5000]",
            "context {Student * Section} * Course",
            "context {{Grad} * Advising} * Faculty",
            "context Course * Course_1 ^*",
            "context Course * Course_1 ^2",
            "context Section * Course * Course_1 ^*",
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 25",
            "context Transcript[letter = 'A'] ! Course",
        ]
        for text in shapes:
            outcomes = [(label, _outcome(processor, text))
                        for label, processor in executors]
            reference = outcomes[0][1]
            for label, outcome in outcomes[1:]:
                assert outcome == reference, (text, label)

    def test_parallel_executor_actually_parallelizes(self, executors):
        """The harness must not silently compare four sequential runs:
        at least one generated case has to take the partitioned path."""
        parallel = executors[2][1]
        parallel.execute("context Student * Section * Course")
        assert parallel.evaluator.last_metrics.workers_used > 1
        assert parallel.evaluator.last_metrics.worker_mode == "thread"

    def test_process_executor_actually_uses_processes(self, executors):
        """Same guard for the process tier: workers must be real child
        processes (distinct PIDs in the partition records)."""
        process = executors[3][1]
        process.execute("context Student * Section * Course")
        metrics = process.evaluator.last_metrics
        assert metrics.workers_used > 1
        assert metrics.worker_mode == "process"
        pids = {part["pid"] for part in metrics.partitions}
        assert pids and os.getpid() not in pids


class TestDifferentialRules:
    """Rule-shaped subset: the same chains packaged as deductive rules,
    derived through four RuleEngine configurations."""

    def _engines(self, db) -> List[Tuple[str, RuleEngine]]:
        compact = RuleEngine(db, compact=True)
        setbased = RuleEngine(db, compact=False)
        parallel = RuleEngine(db, compact=True, workers=4)
        parallel.evaluator.min_parallel_rows = 1
        parallel.processor.evaluator.min_parallel_rows = 1
        process = RuleEngine(db, compact=True, workers=4,
                             worker_mode="process")
        process.evaluator.min_parallel_rows = 1
        process.processor.evaluator.min_parallel_rows = 1
        return [("compact", compact), ("set-based", setbased),
                ("parallel-4", parallel), ("process-4", process)]

    def test_seeded_random_rules_agree(self, university_db):
        cases = max(CASES // 10, 5)
        engines = self._engines(university_db)
        mismatches = []
        added = 0
        for case in range(cases):
            seed = DB_SEED * 200_000 + case
            rng = random.Random(seed)
            spec = _random_spec(rng)
            if len(spec.chain) < 2 or spec.where or spec.loop:
                continue  # rule targets want two plain slots
            target = f"T{case}"
            rule_text = (f"if context {spec.text()[len('context '):]} "
                         f"then {target} "
                         f"({spec.chain[0]}, {spec.chain[-1]})")
            try:
                for _, engine in engines:
                    engine.add_rule(rule_text)
            except ReproError:
                continue  # all engines share one parser: skip uniformly
            added += 1
            dumps = {label: _dump(engine.derive(target))
                     for label, engine in engines}
            reference = dumps["compact"]
            for label, dump in dumps.items():
                if dump != reference:
                    mismatches.append(
                        f"seed={seed} rule={rule_text!r} {label} differs")
        assert added >= 3, "generator produced too few rule-shaped cases"
        assert not mismatches, "\n".join(mismatches)


class TestDifferentialCache:
    """Cache tier: the seeded cases replayed with the cross-query result
    cache enabled, with random writes interleaved between repetitions,
    must stay byte-identical to a cache-off executor over the same
    database — and a write touching a query's dependency classes must
    never be answered from the cache (zero stale hits)."""

    WRITE_CLASSES = ("Department", "Course", "TA", "Teacher", "Undergrad")

    def _fresh_pair(self):
        """Function-scoped database: this tier mutates it freely."""
        db = generate_university(GeneratorConfig(), seed=DB_SEED).db
        cached = QueryProcessor(Universe(db), compact=True,
                                cache_bytes=16 << 20)
        plain = QueryProcessor(Universe(db), compact=True)
        return db, cached, plain

    def _write(self, db, rng: random.Random, tick: int) -> str:
        cls = rng.choice(self.WRITE_CLASSES)
        name = f"w{tick}"
        if cls == "Department":
            db.insert(cls, name, name=f"Dept{tick}")
        elif cls == "Course":
            db.insert(cls, name, **{"c#": 9000 + tick, "title": f"T{tick}",
                                    "credit_hours": 3})
        elif cls == "Teacher":
            db.insert(cls, name, **{"SS#": f"999-{tick:05d}", "name": name})
        else:
            db.insert(cls, name)
        return cls

    def test_cached_matches_uncached_under_interleaved_writes(self):
        db, cached, plain = self._fresh_pair()
        cases = max(CASES // 2, 25)
        rng = random.Random(DB_SEED * 300_000)
        mismatches = []
        tick = 0
        for round_no in range(3):
            for case in range(cases):
                seed = DB_SEED * 100_000 + case
                text = _random_spec(random.Random(seed)).text()
                if rng.random() < 0.30:
                    tick += 1
                    self._write(db, rng, tick)
                warm = _outcome(cached, text)
                cold = _outcome(plain, text)
                if warm != cold:
                    mismatches.append(
                        f"round={round_no} seed={seed} query={text!r}: "
                        f"cached {warm[0]} vs uncached {cold[0]}")
                if len(mismatches) >= 5:
                    break
            if len(mismatches) >= 5:
                break
        stats = cached.evaluator.result_cache.stats()
        assert stats["hits"] > 0, "cache never hit: the tier is vacuous"
        assert not mismatches, (
            f"{len(mismatches)} cache-parity mismatch(es):\n"
            + "\n".join(mismatches))

    def test_no_stale_hits_after_dependency_writes(self):
        """After any write that moves a query's version vector, the next
        run of that query must be a miss; after a write that does not,
        the entry must still be served."""
        db, cached, plain = self._fresh_pair()
        rng = random.Random(DB_SEED * 400_000)
        invalidated = served = 0
        tick = 0
        for case in range(max(CASES // 2, 25)):
            seed = DB_SEED * 100_000 + case
            spec = _random_spec(random.Random(seed))
            text = spec.text()
            deps = sorted(set(spec.chain))
            if _outcome(cached, text)[0] != "ok":
                continue
            _outcome(cached, text)
            assert cached.evaluator.last_metrics.cache_hits == 1, text
            before = db.version_vector(deps)
            tick += 1
            self._write(db, rng, tick)
            rerun = _outcome(cached, text)
            hits = cached.evaluator.last_metrics.cache_hits
            if db.version_vector(deps) != before:
                assert hits == 0, (
                    f"stale hit: {text!r} served from cache after a write "
                    f"touching its dependency classes {deps}")
                assert rerun == _outcome(plain, text), text
                invalidated += 1
            else:
                assert hits == 1, (
                    f"unrelated write needlessly evicted {text!r}")
                served += 1
        assert invalidated >= 3, "no case exercised invalidation"
        assert served >= 3, "no case exercised survival"


class TestDifferentialIndexes:
    """Value-index tier: the seeded corpus re-run against executors with
    every CONDITIONS attribute indexed — serial, thread-partitioned and
    process-partitioned — interleaved with random writes (inserts,
    attribute updates, deletes), must match a scan-only executor byte
    for byte, including which queries error and with what.  The indexed
    side must actually probe, or the tier is vacuous."""

    INDEXED = (("Course", "c#"), ("Course", "credit_hours"),
               ("Section", "section#"), ("Section", "textbook"),
               ("Transcript", "grade"), ("Transcript", "letter"),
               ("Department", "college"), ("Teacher", "degree"),
               ("Faculty", "rank"), ("Student", "GPA"), ("Grad", "GPA"))

    def _executors(self, db):
        def indexed(**kw):
            processor = QueryProcessor(Universe(db), compact=True,
                                       min_parallel_rows=1, **kw)
            for cls, attr in self.INDEXED:
                processor.universe.declare_index(cls, attr)
            return processor
        return [("scan", QueryProcessor(Universe(db), compact=True)),
                ("indexed", indexed()),
                ("indexed-threads", indexed(workers=4)),
                ("indexed-process", indexed(workers=4,
                                            worker_mode="process"))]

    def _write(self, db, rng: random.Random, tick: int,
               own: List) -> None:
        kind = rng.choice(("insert", "insert", "set_attribute",
                           "set_attribute", "delete"))
        if kind == "insert":
            own.append(db.insert(
                "Course", f"ix{tick}",
                **{"c#": 1000 + (tick * 37) % 9000, "title": f"T{tick}",
                   "credit_hours": rng.randint(1, 5)}).oid)
        elif kind == "set_attribute":
            course = rng.choice(sorted(db.extent("Course")))
            db.set_attribute(course, "credit_hours", rng.randint(1, 5))
        elif own:
            db.delete(own.pop(rng.randrange(len(own))))

    def test_indexed_matches_scan_under_interleaved_writes(self):
        db = generate_university(GeneratorConfig(), seed=DB_SEED).db
        executors = self._executors(db)
        rng = random.Random(DB_SEED * 600_000)
        own: List = []
        failures = []
        tick = 0
        probes = 0
        try:
            for case in range(CASES):
                seed = DB_SEED * 100_000 + case
                text = _random_spec(random.Random(seed)).text()
                if rng.random() < 0.30:
                    tick += 1
                    self._write(db, rng, tick, own)
                outcomes = [(label, _outcome(processor, text))
                            for label, processor in executors]
                reference = outcomes[0][1]
                for label, outcome in outcomes[1:]:
                    if outcome != reference:
                        failures.append(
                            f"seed={seed} {text!r}: {label} "
                            f"{outcome[0]} vs scan {reference[0]}")
                metrics = executors[1][1].evaluator.last_metrics
                if metrics is not None:
                    probes += metrics.index_probes
                if len(failures) >= 5:
                    break
        finally:
            for _, processor in executors:
                processor.close()
        assert probes > 0, "no query ever probed an index: tier vacuous"
        assert not failures, (
            f"{len(failures)} index-parity mismatch(es):\n"
            + "\n".join(failures))

    def test_maintenance_keeps_built_indexes_exact(self):
        """Directed maintenance check: build the indexes, then verify
        parity survives each write kind individually — the maintainers
        must update in place (epoch advances), not just invalidate."""
        db = generate_university(GeneratorConfig(), seed=DB_SEED).db
        indexed = QueryProcessor(Universe(db), compact=True)
        indexed.universe.declare_index("Course", "c#")
        indexed.universe.declare_index("Course", "credit_hours")
        plain = QueryProcessor(Universe(db), compact=True)
        queries = ("context Course[c# < 5000]",
                   "context Course[credit_hours >= 3] * Section")
        for text in queries:  # builds both indexes
            assert _outcome(indexed, text) == _outcome(plain, text)
        from repro.subdb.refs import ClassRef
        ref = ClassRef("Course")
        index = indexed.universe.attr_index_if_ready(ref, "c#")
        assert index is not None, "probe did not build the index"
        epoch = index.epoch
        course = db.insert("Course", "mx1",
                           **{"c#": 4321, "title": "M",
                              "credit_hours": 2}).oid
        db.set_attribute(course, "c#", 1234)
        for text in queries:
            assert _outcome(indexed, text) == _outcome(plain, text)
        live = indexed.universe.attr_index_if_ready(ref, "c#")
        assert live is not None and live.epoch > epoch, (
            "writes should maintain the built index in place")
        db.delete(course)
        for text in queries:
            assert _outcome(indexed, text) == _outcome(plain, text)


class TestTracingParity:
    """Tracing must be observationally free: rerunning every case with a
    tracer installed yields byte-identical results and identical row
    counters.  Anything else means instrumentation leaked into
    evaluation."""

    COUNTERS = ("extent_objects", "edge_traversals", "rows_generated",
                "patterns_subsumed", "patterns_out", "loop_levels")

    def _counters(self, processor: QueryProcessor) -> dict:
        metrics = processor.evaluator.last_metrics
        return {name: getattr(metrics, name) for name in self.COUNTERS}

    def test_traced_runs_match_untraced(self, executors):
        mismatches = []
        for case in range(CASES):
            seed = DB_SEED * 100_000 + case
            spec = _random_spec(random.Random(seed))
            text = spec.text()
            for label, processor in executors:
                plain = _outcome(processor, text)
                counters = self._counters(processor)
                obs.install(obs.Tracer())
                try:
                    traced = _outcome(processor, text)
                    traced_counters = self._counters(processor)
                    trace_id = processor.evaluator.last_metrics.trace_id
                finally:
                    obs.uninstall()
                if traced != plain:
                    mismatches.append(
                        f"seed={seed} {label}: outcome differs under "
                        f"tracing ({plain[0]} vs {traced[0]})")
                elif traced_counters != counters:
                    mismatches.append(
                        f"seed={seed} {label}: counters differ under "
                        f"tracing ({counters} vs {traced_counters})")
                elif plain[0] == "ok" and trace_id is None:
                    mismatches.append(
                        f"seed={seed} {label}: no trace_id recorded")
                if len(mismatches) >= 5:
                    break
            if len(mismatches) >= 5:
                break
        assert not mismatches, (
            f"{len(mismatches)} tracing-parity mismatch(es) over "
            f"{CASES} cases:\n" + "\n".join(mismatches))

    def test_trace_artifact_export(self, executors, tmp_path):
        """Trace a representative sample and save a Chrome trace; when
        ``DIFFERENTIAL_TRACE_OUT`` is set (nightly CI), write it there
        so the run uploads it as a workflow artifact."""
        samples = [
            "context Student * Section * Course",
            "context Course * Course_1 ^*",
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 25",
        ]
        tracer = obs.Tracer()
        obs.install(tracer)
        try:
            for _, processor in executors:
                for text in samples:
                    processor.execute(text)
        finally:
            obs.uninstall()
        roots = tracer.recorder.traces()
        assert len(roots) == len(samples) * len(executors)
        out = os.environ.get("DIFFERENTIAL_TRACE_OUT")
        path = out if out else str(tmp_path / "differential_trace.json")
        saved = obs.save_chrome_trace(path, roots)
        doc = json.loads(saved.read_text())
        assert doc["traceEvents"], "empty chrome trace"


class TestDifferentialSubscriptions:
    """Subscription-conformance tier: the seeded query corpus run as
    live subscriptions over a mutating database.  After **every** write
    event, folding ``initial ⊕ deltas`` in sequence order must equal a
    scratch re-evaluation of the same query, byte for byte through the
    canonical row serialization — and a write that leaves a
    subscription's class-granular version vector untouched must produce
    no frame and no wakeup at all."""

    # (owner class, association, target class) triples to link/unlink.
    ASSOCS = (
        ("Teacher", "teaches", "Section"),
        ("Student", "enrolled", "Section"),
        ("Section", "course", "Course"),
        ("Course", "prereq", "Course"),
    )

    def _fresh(self):
        db = generate_university(GeneratorConfig(), seed=DB_SEED).db
        engine = RuleEngine(db, compact=True)
        manager = SubscriptionManager(engine)
        scratch = QueryProcessor(Universe(db), compact=True)
        return db, engine, manager, scratch

    @staticmethod
    def _rows_dump(rows) -> bytes:
        return json.dumps([list(r) for r in canonical_rows(rows)],
                          sort_keys=True).encode()

    @staticmethod
    def _scratch_rows(scratch: QueryProcessor, text: str):
        subdb = scratch.execute(text).subdatabase
        return {tuple(None if v is None else v.value for v in p.values)
                for p in subdb.patterns}

    def _random_write(self, db, rng: random.Random, tick: int,
                      own: List) -> Optional[str]:
        """One random mutation over the university schema; retries on
        constraint violations so every call lands at most one event."""
        for _ in range(8):
            kind = rng.choice(("insert", "insert", "associate",
                               "associate", "dissociate",
                               "set_attribute", "delete"))
            try:
                if kind == "insert":
                    cls = rng.choice(("Course", "Teacher", "Department",
                                      "Undergrad"))
                    label = f"s{tick}"
                    if cls == "Course":
                        oid = db.insert(cls, label,
                                        **{"c#": 9000 + tick,
                                           "title": f"T{tick}",
                                           "credit_hours": 3})
                    elif cls == "Teacher":
                        oid = db.insert(cls, label, name=label,
                                        **{"SS#": f"999-{tick:05d}"})
                    elif cls == "Department":
                        oid = db.insert(cls, label, name=f"Dept{tick}")
                    else:
                        oid = db.insert(cls, label)
                    own.append(oid)
                elif kind in ("associate", "dissociate"):
                    owner_cls, name, target_cls = rng.choice(self.ASSOCS)
                    owner = rng.choice(sorted(db.extent(owner_cls)))
                    target = rng.choice(sorted(db.extent(target_cls)))
                    if kind == "associate":
                        db.associate(owner, name, target)
                    else:
                        db.dissociate(owner, name, target)
                elif kind == "set_attribute":
                    course = rng.choice(sorted(db.extent("Course")))
                    db.set_attribute(course, "credit_hours",
                                     rng.randint(1, 5))
                else:  # delete — only objects this tier inserted
                    if not own:
                        continue
                    db.delete(own.pop(rng.randrange(len(own))))
                return kind
            except ReproError:
                continue
        return None

    def _fold(self, state, frames, failures, context):
        """Apply a drained frame list to the folded client-side state,
        checking the per-frame invariants on the way."""
        seqs = [f.seq for f in frames]
        if seqs != sorted(seqs) or len(set(seqs)) != len(seqs):
            failures.append(f"{context}: non-monotonic seqs {seqs}")
        for frame in frames:
            if frame.kind in ("resync", "snapshot"):
                state = set(frame.added)
            elif frame.kind == "delta":
                added, removed = set(frame.added), set(frame.removed)
                if added & state:
                    failures.append(
                        f"{context}: delta re-adds present rows")
                if not removed <= state:
                    failures.append(
                        f"{context}: delta removes absent rows")
                state = (state - removed) | added
            else:  # closed
                failures.append(f"{context}: unexpected closed frame "
                                f"({frame.error})")
        return state

    def test_fold_matches_scratch_after_every_event(self):
        db, engine, manager, scratch = self._fresh()
        baseline = db.listener_count()
        failures: List[str] = []
        tested = writes = 0
        tick = 0
        own: List = []
        for case in range(CASES):
            seed = DB_SEED * 500_000 + case
            rng = random.Random(seed)
            text = _random_spec(rng).text()
            try:
                scratch.execute(text)
            except ReproError:
                continue  # both sides must reject: skip uniformly
            sub = manager.subscribe(text)
            state = set(sub.initial.added)
            if self._rows_dump(state) != self._rows_dump(
                    self._scratch_rows(scratch, text)):
                failures.append(f"seed={seed} {text!r}: initial "
                                "snapshot differs from scratch")
            for _ in range(rng.randint(2, 5)):
                tick += 1
                vec_before = (db.version_vector(sub.classes)
                              if sub.classes is not None else None)
                wakeups_before = sub.counters["wakeups"]
                if self._random_write(db, rng, tick, own) is None:
                    continue
                writes += 1
                if vec_before is not None \
                        and db.version_vector(sub.classes) == vec_before:
                    if sub.counters["wakeups"] != wakeups_before:
                        failures.append(
                            f"seed={seed} {text!r}: spurious wakeup on "
                            "unrelated-class write")
                    if sub.pending():
                        failures.append(
                            f"seed={seed} {text!r}: frame emitted for "
                            "unrelated-class write")
                state = self._fold(state, sub.poll(), failures,
                                   f"seed={seed} {text!r}")
                if self._rows_dump(state) != self._rows_dump(
                        self._scratch_rows(scratch, text)):
                    failures.append(
                        f"seed={seed} {text!r}: fold != scratch after "
                        f"write {tick} "
                        f"(incremental={sub.incremental})")
                if len(failures) >= 5:
                    break
            manager.unsubscribe(sub.id)
            tested += 1
            if len(failures) >= 5:
                break
        assert tested >= min(CASES * 2 // 3, 60), (
            f"only {tested} of {CASES} cases were subscribable")
        assert writes >= tested, "write generator produced too few events"
        assert not failures, (
            f"{len(failures)} subscription-conformance failure(s) over "
            f"{tested} cases / {writes} writes:\n" + "\n".join(failures))
        assert manager.active_count == 0
        assert db.listener_count() == baseline, "leaked a db listener"

    def test_unrelated_class_writes_never_wake_subscribers(self):
        """Directed version of the wakeup check: a Teacher * Section
        subscription sits through a storm of Department/Course writes
        without a single wakeup or frame."""
        db, engine, manager, scratch = self._fresh()
        sub = manager.subscribe("context Teacher * Section")
        assert sub.classes == ("Section", "Teacher")
        for tick in range(25):
            db.insert("Department", f"u{tick}", name=f"D{tick}")
            db.insert("Course", f"uc{tick}",
                      **{"c#": 7000 + tick, "title": "X",
                         "credit_hours": 3})
        assert sub.counters["wakeups"] == 0
        assert sub.counters["skipped_unrelated"] == 50
        assert sub.pending() == 0 and sub.poll() == []
        manager.unsubscribe(sub.id)

    def test_incremental_and_scratch_paths_both_exercised(self):
        """The corpus must cover both delta paths, or the tier silently
        tests only one implementation."""
        db, engine, manager, scratch = self._fresh()
        modes = set()
        for case in range(CASES):
            rng = random.Random(DB_SEED * 500_000 + case)
            text = _random_spec(rng).text()
            try:
                sub = manager.subscribe(text)
            except ReproError:
                continue
            modes.add(sub.incremental)
            manager.unsubscribe(sub.id)
            if modes == {True, False}:
                return
        raise AssertionError(f"only {modes} delta paths generated")
