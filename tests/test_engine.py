"""Unit tests for the rule engine: rule base management, backward
chaining through the provider, memoization, and statistics."""

import pytest

from repro.errors import (
    CyclicRuleError,
    RuleSemanticError,
    UnknownSubdatabaseError,
)
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database


R1 = ("if context Teacher * Section * Course "
      "then Teacher_course (Teacher, Course)")
R2 = ("if context Department[name = 'CIS'] * Course * Section * Student "
      "where COUNT(Student by Course) > 39 then Suggest_offer (Course)")
R4 = ("if context TA * Teacher * Section * Suggest_offer:Course "
      "then May_teach (TA, Course)")
R5 = ("if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
      "then May_teach (Grad, Course)")


@pytest.fixture
def paper():
    return build_paper_database()


@pytest.fixture
def engine(paper):
    return RuleEngine(paper.db)


class TestRuleBase:
    def test_add_rule_from_text(self, engine):
        rule = engine.add_rule(R1, label="R1")
        assert rule.label == "R1"
        assert engine.rules_for("Teacher_course") == [rule]

    def test_add_preparsed_rule(self, engine):
        from repro.rules.rule import parse_rule
        rule = parse_rule(R1)
        engine.add_rule(rule)
        assert engine.rules_for("Teacher_course") == [rule]

    def test_invalid_rule_rejected(self, engine):
        with pytest.raises(RuleSemanticError):
            engine.add_rule("if context Teacher then X (Course)")

    def test_target_names(self, engine):
        engine.add_rule(R2)
        engine.add_rule(R4)
        assert engine.target_names == ["May_teach", "Suggest_offer"]

    def test_rule_graph(self, engine):
        engine.add_rule(R2)
        engine.add_rule(R4)
        graph = engine.rule_graph()
        assert graph["May_teach"] == {"Suggest_offer"}
        assert graph["Suggest_offer"] == set()

    def test_cyclic_rule_base_rejected_and_rolled_back(self, engine):
        engine.add_rule("if context Teacher * Section then A (Teacher)")
        engine.add_rule("if context A:Teacher then B (Teacher)")
        with pytest.raises(CyclicRuleError):
            engine.add_rule("if context B:Teacher then A (Teacher)")
        # Rollback: A still derivable with its single original rule.
        assert len(engine.rules_for("A")) == 1
        engine.derive("A")

    def test_topological_targets(self, engine):
        engine.add_rule(R4)
        engine.add_rule(R2)
        order = engine.topological_targets()
        assert order.index("Suggest_offer") < order.index("May_teach")

    def test_invalid_controller_name(self, paper):
        with pytest.raises(ValueError):
            RuleEngine(paper.db, controller="mystery")


class TestDerivation:
    def test_derive_materializes(self, engine):
        engine.add_rule(R1)
        result = engine.derive("Teacher_course")
        assert engine.universe.has_subdb("Teacher_course")
        assert len(result) > 0

    def test_derive_memoizes(self, engine):
        engine.add_rule(R1)
        engine.derive("Teacher_course")
        engine.derive("Teacher_course")
        assert engine.stats.derivations["Teacher_course"] == 1

    def test_force_rederives(self, engine):
        engine.add_rule(R1)
        engine.derive("Teacher_course")
        engine.derive("Teacher_course", force=True)
        assert engine.stats.derivations["Teacher_course"] == 2

    def test_unknown_target(self, engine):
        with pytest.raises(UnknownSubdatabaseError):
            engine.derive("Nothing")

    def test_backward_chain_derives_sources_first(self, engine):
        engine.add_rule(R2, label="R2")
        engine.add_rule(R4, label="R4")
        engine.derive("May_teach")
        assert engine.stats.derivations["Suggest_offer"] == 1
        assert engine.universe.has_subdb("Suggest_offer")

    def test_adding_rule_invalidates_target(self, engine):
        engine.add_rule(R2, label="R2")
        engine.add_rule(R4, label="R4")
        before = engine.derive("May_teach")
        assert all(l[2] is None for l in before.labels()
                   if len(l) > 2)  # no Grad slot yet
        engine.add_rule(R5, label="R5")
        after = engine.derive("May_teach")
        assert "Grad" in after.slot_names

    def test_refresh_materializes_everything(self, engine):
        engine.add_rule(R2)
        engine.add_rule(R4)
        engine.refresh()
        assert engine.universe.has_subdb("Suggest_offer")
        assert engine.universe.has_subdb("May_teach")


class TestQueries:
    def test_query_triggers_backward_chaining(self, engine):
        engine.add_rule(R2, label="R2")
        engine.add_rule(R4, label="R4")
        engine.add_rule(R5, label="R5")
        result = engine.query(
            "context Faculty * Advising * May_teach:TA[GPA < 3.5] "
            "select TA[name] Faculty[name] display")
        assert result.table.rows == [("Quinn", "Su")]
        assert engine.stats.derivations["Suggest_offer"] == 1
        assert engine.stats.derivations["May_teach"] == 1

    def test_repeated_query_reuses_memo(self, engine):
        engine.add_rule(R1)
        engine.query("context Teacher_course:Teacher select name")
        engine.query("context Teacher_course:Teacher select name")
        assert engine.stats.derivations["Teacher_course"] == 1
        assert engine.stats.queries == 2

    def test_query_on_base_classes_needs_no_rules(self, engine):
        result = engine.query("context Teacher * Section select name")
        assert len(result.table) > 0

    def test_stats_snapshot(self, engine):
        engine.add_rule(R1)
        engine.query("context Teacher_course:Teacher select name")
        snap = engine.stats.snapshot()
        assert snap["queries"] == 1
        assert snap["derivations"] == 1


class TestClosureProperty:
    """The world of subdatabases is closed: rules read what rules wrote."""

    def test_three_level_chain(self, engine):
        engine.add_rule(R1, label="R1")
        engine.add_rule("if context Teacher_course:Teacher * "
                        "Teacher_course:Course [c# >= 6000] "
                        "then Grad_teachers (Teacher)", label="L2")
        engine.add_rule("if context Grad_teachers:Teacher [degree = 'PhD'] "
                        "then Phd_grad_teachers (Teacher)", label="L3")
        result = engine.derive("Phd_grad_teachers")
        names = {engine.universe.db.entity(p[0])["name"]
                 for p in result.patterns}
        assert names == {"Smith", "Jones"}
        assert engine.stats.derivations["Teacher_course"] == 1
        assert engine.stats.derivations["Grad_teachers"] == 1

    def test_affected_targets_transitive(self, engine):
        engine.add_rule(R2)
        engine.add_rule(R4)
        affected = engine.affected_targets({"Student"})
        assert affected == {"Suggest_offer", "May_teach"}

    def test_affected_targets_direct_only_when_untouched_upstream(
            self, engine):
        engine.add_rule(R2)
        engine.add_rule(R4)
        # Transcript only appears in no rule here: nothing affected.
        assert engine.affected_targets({"Transcript"}) == set()


class TestRemoveRule:
    def test_remove_by_label(self, engine):
        engine.add_rule(R4, label="R4")
        engine.add_rule(R5, label="R5")
        engine.add_rule(R2, label="R2")
        engine.derive("May_teach")
        removed = engine.remove_rule("R4")
        assert removed.label == "R4"
        assert not engine.universe.has_subdb("May_teach")
        # R5 still derives May_teach, now without a TA slot.
        subdb = engine.derive("May_teach")
        assert "TA" not in subdb.slot_names

    def test_remove_last_rule_makes_target_unknown(self, engine):
        engine.add_rule(R1, label="R1")
        engine.remove_rule("R1")
        with pytest.raises(UnknownSubdatabaseError):
            engine.derive("Teacher_course")

    def test_remove_invalidates_downstream(self, engine):
        engine.add_rule(R2, label="R2")
        engine.add_rule(R4, label="R4")
        engine.derive("May_teach")
        engine.remove_rule("R2")
        assert not engine.universe.has_subdb("May_teach")

    def test_remove_by_object(self, engine):
        rule = engine.add_rule(R1)
        engine.remove_rule(rule)
        assert engine.rules == []

    def test_remove_unknown_label(self, engine):
        with pytest.raises(RuleSemanticError):
            engine.remove_rule("ghost")

    def test_remove_ambiguous_label(self, engine):
        engine.add_rule(R4, label="dup")
        engine.add_rule(R5, label="dup")
        with pytest.raises(RuleSemanticError):
            engine.remove_rule("dup")
