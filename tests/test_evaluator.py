"""Unit tests for the pattern-matching engine: chains, the
non-association operator, brace groups (Section 5.1), the Where
subclause, and loop-based transitive closure (Section 5.2)."""

import pytest

from repro.errors import CyclicDataError, OQLSemanticError
from repro.model.database import Database
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression, parse_query
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


def abcd_universe():
    """The paper's Section 5.1 example world: A*B*C*D linearly
    associated, with exactly the two stored patterns (a1,b5,c5,d5) and
    (a3,b2,c2)."""
    schema = Schema("abcd")
    for name in "ABCD":
        schema.add_eclass(name)
        schema.add_attribute(name, "tag", STRING)
    schema.add_association("A", "B")
    schema.add_association("B", "C")
    schema.add_association("C", "D")
    db = Database(schema)
    objs = {}
    for label in ["a1", "a3", "b5", "b2", "c5", "c2", "d5"]:
        objs[label] = db.insert(label[0].upper(), label, tag=label)
    db.associate(objs["a1"], "B", objs["b5"])
    db.associate(objs["b5"], "C", objs["c5"])
    db.associate(objs["c5"], "D", objs["d5"])
    db.associate(objs["a3"], "B", objs["b2"])
    db.associate(objs["b2"], "C", objs["c2"])
    return Universe(db), objs


def evaluate(universe, text, where=(), **kwargs):
    evaluator = PatternEvaluator(universe, **kwargs)
    return evaluator.evaluate(parse_expression(text), where)


def rows(subdb):
    return sorted(subdb.labels(),
                  key=lambda t: tuple((x is None, str(x)) for x in t))


@pytest.fixture
def paper_universe():
    data = build_paper_database()
    return Universe(data.db), data


class TestLinearChains:
    def test_association_operator_drops_unassociated(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Teacher * Section")
        labels = dict.fromkeys(l[0] for l in result.labels())
        assert "t4" not in labels  # teaches nothing

    def test_three_way_chain_requires_full_connection(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "A * B * C * D")
        assert rows(result) == [("a1", "b5", "c5", "d5")]

    def test_single_class_context(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "D")
        assert rows(result) == [("d5",)]

    def test_chain_through_identity(self, paper_universe):
        universe, data = paper_universe
        result = evaluate(universe, "TA * Teacher * Section")
        tas = {l[0] for l in result.labels()}
        assert tas == {"ta1", "ta2"}
        # Identity: the TA and Teacher slots hold the same object.
        for pattern in result.patterns:
            assert pattern[0] == pattern[1]

    def test_intension_records_edges(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Teacher * Section * Course")
        labels = {e.label for e in result.intension.edges}
        assert labels == {"teaches", "course"}

    def test_duplicate_class_needs_alias(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(OQLSemanticError):
            evaluate(universe, "Course * Course")

    def test_alias_allows_self_join(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Course * Course_1")
        assert rows(result) == [("c1", "c2"), ("c4", "c1")]


class TestNonAssociation:
    def test_complement_pairs(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "A ! B")
        assert rows(result) == [("a1", "b2"), ("a3", "b5")]

    def test_complement_composes_in_chain(self):
        universe, _ = abcd_universe()
        # a1's B-partner is b5; the not-associated B is b2, whose C is c2.
        result = evaluate(universe, "A ! B * C")
        assert ("a1", "b2", "c2") in result.labels()
        assert ("a3", "b5", "c5") in result.labels()

    def test_intension_marks_non_association(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "A ! B")
        assert result.intension.edges[0].label.startswith("!")


class TestIntraClassConditions:
    def test_filtering(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(
            universe, "Course [c# >= 6000 and c# < 7000] * Section")
        courses = {l[0] for l in result.labels()}
        assert courses == {"c1", "c4"}

    def test_string_condition(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Department [name = 'CIS'] * Course")
        assert {l[0] for l in result.labels()} == {"d1"}

    def test_condition_on_derived_class(self, paper_universe):
        universe, data = paper_universe
        universe.register(build_sdb(data))
        result = evaluate(universe, "SDB:Teacher [degree = 'PhD']")
        assert {l[0] for l in result.labels()} == {"t1", "t2", "t4"}

    def test_unknown_attribute_in_condition(self, paper_universe):
        universe, _ = paper_universe
        from repro.errors import UnknownAttributeError
        with pytest.raises(UnknownAttributeError):
            evaluate(universe, "Course [salary > 3]")


class TestBraces:
    def test_paper_section_51_example(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "A * {B * C} * D")
        assert rows(result) == [
            ("a1", "b5", "c5", "d5"),
            (None, "b2", "c2", None),
        ]

    def test_subsumption_drops_contained_brace_pattern(self):
        # (b5,c5) is part of (a1,b5,c5,d5): it must not appear alone.
        universe, _ = abcd_universe()
        result = evaluate(universe, "A * {B * C} * D")
        assert (None, "b5", "c5", None) not in result.labels()

    def test_nested_braces_identify_prefix_types(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "{{{A} * B} * C} * D")
        types = {tuple(t.slots) for t in result.pattern_types()}
        # a1 chains all the way: one full row; a3 reaches only C: the
        # (A,B,C) type row survives; no bare (A) rows survive.
        assert ("A", "B", "C", "D") in types
        assert ("A", "B", "C") in types
        assert rows(result) == [
            ("a1", "b5", "c5", "d5"),
            ("a3", "b2", "c2", None),
        ]

    def test_query_51_shape(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "{{Grad} * Advising} * Faculty")
        by_grad = {l[0]: l[2] for l in result.labels()}
        assert by_grad["ta1"] == "f1"
        assert by_grad["g1"] == "f2"
        assert by_grad["g2"] is None       # no advisor -> Null
        assert by_grad["ra1"] is None

    def test_whole_expression_braced_once(self):
        universe, _ = abcd_universe()
        result = evaluate(universe, "{A * B}")
        assert rows(result) == [("a1", "b5"), ("a3", "b2")]


class TestWhere:
    def test_interclass_comparison(self):
        universe, _ = abcd_universe()
        query = parse_query("context A * B where A.tag = 'a1'")
        result = PatternEvaluator(universe).evaluate(query.context,
                                                     query.where)
        assert rows(result) == [("a1", "b5")]

    def test_interclass_attr_to_attr(self):
        universe, _ = abcd_universe()
        query = parse_query("context A * B where A.tag < B.tag")
        result = PatternEvaluator(universe).evaluate(query.context,
                                                     query.where)
        assert rows(result) == [("a1", "b5"), ("a3", "b2")]

    def test_count_aggregation(self, paper_universe):
        universe, _ = paper_universe
        query = parse_query(
            "context Department[name = 'CIS'] * Course * Section * "
            "Student where COUNT(Student by Course) > 39")
        result = PatternEvaluator(universe).evaluate(query.context,
                                                     query.where)
        assert {l[1] for l in result.labels()} == {"c1"}

    def test_count_threshold_not_met(self, paper_universe):
        universe, _ = paper_universe
        query = parse_query(
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 1000")
        result = PatternEvaluator(universe).evaluate(query.context,
                                                     query.where)
        assert len(result) == 0

    def test_sum_avg_min_max(self, paper_universe):
        universe, _ = paper_universe
        for func, op, value, expect_c1 in [
            ("sum", ">", 5, True),     # credit hours over courses per dept
            ("avg", ">=", 3.0, True),
            ("min", ">=", 3, True),
            ("max", ">", 10, False),
        ]:
            query = parse_query(
                f"context Department[name = 'CIS'] * Course "
                f"where {func.upper()}(Course.credit_hours by Department) "
                f"{op} {value}")
            result = PatternEvaluator(universe).evaluate(query.context,
                                                         query.where)
            assert bool(result.patterns) is expect_c1, func

    def test_agg_without_attr_requires_count(self, paper_universe):
        universe, _ = paper_universe
        query = parse_query(
            "context Department * Course where SUM(Course by Department) "
            "> 3")
        with pytest.raises(OQLSemanticError):
            PatternEvaluator(universe).evaluate(query.context, query.where)

    def test_where_unknown_class(self):
        universe, _ = abcd_universe()
        query = parse_query("context A * B where Z.tag = 'x'")
        with pytest.raises(OQLSemanticError):
            PatternEvaluator(universe).evaluate(query.context, query.where)

    def test_where_matches_slot_by_class_when_unique(self, paper_universe):
        universe, data = paper_universe
        universe.register(build_sdb(data))
        # Qualifier 'Teacher' matches the slot 'SDB:Teacher'.
        query = parse_query(
            "context SDB:Teacher * SDB:Section where Teacher.degree = 'MS'")
        result = PatternEvaluator(universe).evaluate(query.context,
                                                     query.where)
        assert {l[0] for l in result.labels()} == {"t3"}


class TestLoops:
    def test_bounded_single_traversal(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Course * Course_1 ^1")
        assert result.slot_names == ("Course", "Course_1")
        assert rows(result) == [("c1", "c2"), ("c4", "c1")]

    def test_unbounded_closure(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Course * Course_1 ^*")
        assert result.slot_names == ("Course", "Course_1", "Course_2")
        assert rows(result) == [("c1", "c2", None), ("c4", "c1", "c2")]

    def test_bounded_stops_early(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(universe, "Course * Course_1 ^2")
        assert ("c4", "c1", "c2") in result.labels()

    def test_grad_teaching_grad(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(
            universe,
            "Grad * TA * Teacher * Section * Student * Grad_1 ^*")
        grads = [(l[0], l[5], l[-1]) for l in result.labels()]
        assert ("ta1", "ta2", "g1") in grads

    def test_loop_aliases_generated_per_level(self, paper_universe):
        universe, _ = paper_universe
        result = evaluate(
            universe,
            "Grad * TA * Teacher * Section * Student * Grad_1 ^*")
        assert "TA_1" in result.slot_names
        assert "Grad_2" in result.slot_names

    def test_cycle_raises_by_default(self):
        schema = Schema()
        schema.add_eclass("N")
        schema.add_association("N", "N", name="next")
        db = Database(schema)
        a, b = db.insert("N", "a"), db.insert("N", "b")
        db.associate(a, "next", b)
        db.associate(b, "next", a)
        with pytest.raises(CyclicDataError):
            evaluate(Universe(db), "N * N_1 ^*")

    def test_cycle_stop_truncates(self):
        schema = Schema()
        schema.add_eclass("N")
        schema.add_association("N", "N", name="next")
        db = Database(schema)
        a, b = db.insert("N", "a"), db.insert("N", "b")
        db.associate(a, "next", b)
        db.associate(b, "next", a)
        result = evaluate(Universe(db), "N * N_1 ^*", on_cycle="stop")
        assert rows(result) == [("a", "b"), ("b", "a")]

    def test_unbounded_guard(self, paper_universe):
        universe, _ = paper_universe
        evaluator = PatternEvaluator(universe, max_depth=1)
        # With max_depth=1 the prereq chain of depth 2 aborts.
        with pytest.raises(CyclicDataError):
            evaluator.evaluate(parse_expression("Course * Course_1 ^*"))

    def test_loop_must_form_cycle(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(OQLSemanticError):
            evaluate(universe, "Teacher * Section ^*")

    def test_loop_rejects_braces(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(OQLSemanticError):
            evaluate(universe, "Course * {Course_1} ^*")

    def test_loop_rejects_non_association_op(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(OQLSemanticError):
            evaluate(universe, "Course ! Course_1 ^*")

    def test_loop_single_class_rejected(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(OQLSemanticError):
            evaluate(universe, "Course ^*")

    def test_loop_respects_intra_conditions(self, paper_universe):
        universe, _ = paper_universe
        # Only 6000-level courses: the c1->c2 hop is filtered out.
        result = evaluate(
            universe, "Course [c# >= 6000] * Course_1 [c# >= 6000] ^*")
        assert rows(result) == [("c4", "c1")]

    def test_on_cycle_validation(self, paper_universe):
        universe, _ = paper_universe
        with pytest.raises(ValueError):
            PatternEvaluator(universe, on_cycle="explode")
