"""Tests for schema evolution: drops, renames, data migration, and
derived-result invalidation."""

import pytest

from repro.errors import (
    ConstraintViolationError,
    SchemaError,
    UnknownAssociationError,
    UnknownClassError,
)
from repro.model import evolution
from repro.model.database import UpdateKind
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database


@pytest.fixture
def data():
    return build_paper_database()


class TestDropAssociation:
    def test_entity_association_links_removed(self, data):
        link = data.db.schema.resolve_link("Teacher", "Section").link
        assert data.db.link_count(link) > 0
        evolution.drop_association(data.db, "Teacher", "teaches")
        from repro.errors import NoAssociationError
        with pytest.raises(NoAssociationError):
            data.db.schema.resolve_link("Teacher", "Section")

    def test_attribute_values_removed(self, data):
        evolution.drop_association(data.db, "Section", "textbook")
        entity = data.db.entity(data.oid("s2"))
        assert "textbook" not in entity

    def test_unknown_association(self, data):
        with pytest.raises(UnknownAssociationError):
            evolution.drop_association(data.db, "Teacher", "nothing")

    def test_schema_event_emitted(self, data):
        events = []
        data.db.add_listener(events.append)
        evolution.drop_association(data.db, "Teacher", "teaches")
        assert events[-1].kind is UpdateKind.SCHEMA
        assert "Teacher" in events[-1].classes


class TestDropEClass:
    def test_requires_empty_extent(self, data):
        with pytest.raises(ConstraintViolationError):
            evolution.drop_eclass(data.db, "Transcript")

    def test_cascade_deletes_instances_and_links(self, data):
        evolution.drop_eclass(data.db, "Transcript", cascade=True)
        assert not data.db.schema.has_eclass("Transcript")
        # The links from Transcript are gone from the schema too.
        names = {l.key for l in data.db.schema.aggregations()}
        assert ("Transcript", "student") not in names

    def test_subclasses_block_drop(self, data):
        with pytest.raises(SchemaError):
            evolution.drop_eclass(data.db, "Grad", cascade=True)

    def test_unknown_class(self, data):
        with pytest.raises(UnknownClassError):
            evolution.drop_eclass(data.db, "Ghost")

    def test_leaf_class_with_cascade(self, data):
        evolution.drop_eclass(data.db, "RA", cascade=True)
        assert not data.db.schema.has_eclass("RA")
        assert "RA" not in data.db.schema.subclasses("Grad")


class TestDropSubclass:
    def test_rejected_when_instances_rely_on_it(self, data):
        # TAs teach sections through the Teacher superclass.
        with pytest.raises(ConstraintViolationError):
            evolution.drop_subclass(data.db, "Teacher", "TA")
        # Edge restored on failure:
        assert "TA" in data.db.schema.subclasses("Teacher")

    def test_unused_edge_drops_cleanly(self, data):
        # Undergrads u1/u2 carry 'year' (own) and Person/Student attrs;
        # create a fresh, genuinely unused edge instead.
        schema = data.db.schema
        schema.add_eclass("Visitor")
        schema.add_subclass("Person", "Visitor")
        evolution.drop_subclass(data.db, "Person", "Visitor")
        assert "Visitor" not in schema.subclasses("Person")

    def test_not_a_direct_subclass(self, data):
        with pytest.raises(SchemaError):
            evolution.drop_subclass(data.db, "Person", "TA")


class TestRenameAttribute:
    def test_values_migrate(self, data):
        evolution.rename_attribute(data.db, "Section", "textbook", "book")
        assert data.db.get_attribute(data.oid("s2"), "book") == "Ullman"
        from repro.errors import UnknownAttributeError
        with pytest.raises(UnknownAttributeError):
            data.db.get_attribute(data.oid("s2"), "textbook")

    def test_subclass_instances_migrate_too(self, data):
        evolution.rename_attribute(data.db, "Person", "name", "full_name")
        assert data.db.get_attribute(data.oid("ta1"),
                                     "full_name") == "Quinn"

    def test_name_collision_rejected(self, data):
        with pytest.raises(SchemaError):
            evolution.rename_attribute(data.db, "Course", "title", "c#")

    def test_queries_use_new_name(self, data):
        evolution.rename_attribute(data.db, "Section", "textbook", "book")
        engine = RuleEngine(data.db)
        result = engine.query(
            "context Course [c# = 6100] * Section select book display")
        assert "Ullman" in result.output


class TestDerivedResultInvalidation:
    def test_schema_event_invalidates_all_targets(self, data):
        engine = RuleEngine(data.db)
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS")
        engine.derive("TS")
        assert engine.universe.has_subdb("TS")
        evolution.rename_attribute(data.db, "Section", "textbook", "book")
        assert not engine.universe.has_subdb("TS")
        assert engine.is_stale("TS")

    def test_pre_evaluated_rederived_after_schema_change(self, data):
        from repro.rules.control import EvaluationMode
        engine = RuleEngine(data.db)
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS",
                        mode=EvaluationMode.PRE_EVALUATED)
        engine.refresh()
        evolution.rename_attribute(data.db, "Course", "title", "label")
        assert engine.universe.has_subdb("TS")
        assert not engine.is_stale("TS")

    def test_incremental_controller_rebuilds_maintainers(self, data):
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS")
        engine.refresh()
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert engine.stats.incremental_refreshes == 1
        evolution.rename_attribute(data.db, "Course", "title", "label")
        # Still consistent afterwards:
        data.db.dissociate(data["t4"], "teaches", data["s5"])
        maintained = engine.universe.get_subdb("TS").patterns
        fresh = engine.derive("TS", force=True).patterns
        assert maintained == fresh
