"""Tests for the explain facility (the Section 4.3 trace as data)."""

import pytest

from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database


@pytest.fixture
def engine():
    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * Student "
        "where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")
    return engine


QUERY_41 = ("context Faculty * Advising * May_teach:TA [GPA < 3.5] "
            "select TA[name] display")


class TestExplanationStructure:
    def test_referenced_targets(self, engine):
        plan = engine.explain(QUERY_41)
        assert plan.referenced == ["May_teach"]
        assert plan.base_classes == ["Advising", "Faculty"]

    def test_tree_reaches_transitive_sources(self, engine):
        plan = engine.explain(QUERY_41)
        root = plan.roots[0]
        assert root.name == "May_teach"
        assert [s.name for s in root.sources] == ["Suggest_offer"]
        assert root.sources[0].sources == []

    def test_rules_listed_with_reads(self, engine):
        plan = engine.explain(QUERY_41)
        labels = [step.label for step in plan.roots[0].rules]
        assert labels == ["R4", "R5"]
        r4 = plan.roots[0].rules[0]
        assert r4.reads_targets == ["Suggest_offer"]
        assert "TA" in r4.reads_base

    def test_derivation_order_matches_paper(self, engine):
        # "R2 ... is triggered [first]; the result is then fed to R4."
        plan = engine.explain(QUERY_41)
        assert plan.derivation_order == ["Suggest_offer", "May_teach"]

    def test_warm_targets_drop_out_of_order(self, engine):
        engine.derive("Suggest_offer")
        plan = engine.explain(QUERY_41)
        assert plan.derivation_order == ["May_teach"]
        source = plan.roots[0].sources[0]
        assert source.materialized

    def test_modes_reported(self, engine):
        engine.set_mode("May_teach", EvaluationMode.PRE_EVALUATED)
        plan = engine.explain(QUERY_41)
        assert plan.roots[0].mode == "pre"

    def test_base_only_query(self, engine):
        plan = engine.explain("context Teacher * Section display")
        assert plan.referenced == []
        assert "base database" in plan.render()

    def test_render_contains_tree(self, engine):
        text = engine.explain(QUERY_41).render()
        assert "May_teach" in text
        assert "Suggest_offer" in text
        assert "rule R2" in text
        assert "derivation order: Suggest_offer -> May_teach" in text

    def test_unknown_qualifier_ignored_gracefully(self, engine):
        # SDB is registered externally, not rule-derived: not in the plan.
        from repro.university import build_sdb
        plan = engine.explain("context Ghost_subdb:Teacher"
                              if False else "context Teacher")
        assert plan.roots == []

    def test_shared_source_reported_once_in_order(self, engine):
        engine.add_rule(
            "if context Department * Suggest_offer:Course "
            "then Deps (Department)", label="R3")
        plan = engine.explain(
            "context Deps:Department * Course * Section * "
            "May_teach:TA")
        assert plan.derivation_order.count("Suggest_offer") == 1
        assert plan.derivation_order.index("Suggest_offer") < \
            plan.derivation_order.index("May_teach")
