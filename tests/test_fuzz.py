"""Robustness fuzzing: malformed inputs must fail with the package's
own exception types (never ``KeyError``/``AttributeError``/...), and
well-formed inputs must round-trip through their text forms."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.oql.lexer import tokenize
from repro.oql.parser import parse_expression, parse_query
from repro.rules.rule import parse_rule
from repro.storage import schema_from_dict, schema_to_dict
from repro.storage.session import session_from_dict, session_to_dict
from repro.university.schema import build_university_schema

_TOKEN_POOL = [
    "context", "where", "select", "display", "print", "if", "then",
    "and", "or", "not", "by", "count", "Teacher", "Section", "Course_1",
    "SDB:Teacher", "Grad_", "*", "!", "{", "}", "[", "]", "(", ")",
    "^", ",", ":", ".", "=", "<", ">=", "name", "c#", "'CIS'", "3.5",
    "42", "null",
]


class TestParserFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(st.sampled_from(_TOKEN_POOL), min_size=0,
                    max_size=15))
    def test_random_token_soup_never_crashes(self, pieces):
        text = " ".join(pieces)
        for parser in (parse_query, parse_expression):
            try:
                parser(text)
            except ReproError:
                pass  # rejection with a library error type is correct

    @settings(max_examples=300, deadline=None)
    @given(st.text(max_size=60))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            tokenize(text)
            parse_query(text)
        except ReproError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.sampled_from(_TOKEN_POOL), min_size=0,
                    max_size=15))
    def test_rule_parser_never_crashes(self, pieces):
        try:
            parse_rule(" ".join(pieces))
        except ReproError:
            pass


class TestRoundTrips:
    QUERIES = [
        "context Teacher * Section select name section# display",
        "context Department [name = 'CIS'] * Course "
        "where COUNT(Course by Department) > 2 select title print",
        "context {A * {B * C}} * D",
        "context Course * Course_1 ^3",
        "context Grad ! Advising select Grad[SS#]",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_query_str_reparses_identically(self, text):
        query = parse_query(text)
        again = parse_query(str(query))
        assert str(again) == str(query)

    RULES = [
        "if context Teacher * Section * Course then TC (Teacher, Course)",
        "if context A * B where A.x > 3 then T (A [x, y], B)",
        "if context Grad * TA * Teacher * Section * Student * Grad_1 ^* "
        "then GG (Grad, Grad_)",
    ]

    @pytest.mark.parametrize("text", RULES)
    def test_rule_str_reparses_identically(self, text):
        rule = parse_rule(text)
        again = parse_rule(str(rule))
        assert str(again) == str(rule)


class TestStorageFuzz:
    def _schema_doc(self):
        return schema_to_dict(build_university_schema())

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_mangled_schema_docs_fail_cleanly(self, data):
        doc = self._schema_doc()
        # Drop one random top-level section or mangle one entry.
        choice = data.draw(st.sampled_from(
            ["drop_eclasses", "drop_aggregations", "mangle_target",
             "mangle_generalization"]))
        if choice == "drop_eclasses":
            doc["eclasses"] = []
        elif choice == "drop_aggregations":
            doc["aggregations"] = [{"owner": "Ghost", "name": "x",
                                    "target": "Teacher"}]
        elif choice == "mangle_target":
            if doc["aggregations"]:
                doc["aggregations"][0]["target"] = "NoSuchClass"
        else:
            doc["generalizations"].append(
                {"superclass": "TA", "subclass": "Person"})
        try:
            schema_from_dict(doc)
        except ReproError:
            pass

    def test_session_doc_is_pure_json(self):
        from repro.rules.engine import RuleEngine
        from repro.university import build_paper_database
        engine = RuleEngine(build_paper_database().db)
        engine.add_rule("if context Teacher * Section then TS (Teacher)")
        engine.derive("TS")
        doc = session_to_dict(engine)
        restored = session_from_dict(json.loads(json.dumps(doc)))
        assert [r.target for r in restored.rules] == ["TS"]
