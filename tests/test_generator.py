"""Unit tests for the scalable data generator."""

import pytest

from repro.model.validation import check_database
from repro.university.generator import GeneratorConfig, generate_university


class TestDeterminism:
    def test_same_seed_same_database(self):
        a = generate_university(GeneratorConfig(seed=5, students=20))
        b = generate_university(GeneratorConfig(seed=5, students=20))
        assert a.db.stats() == b.db.stats()
        links_a = sorted((l.key, a.db.link_count(l))
                         for l in a.db.schema.aggregations())
        links_b = sorted((l.key, b.db.link_count(l))
                         for l in b.db.schema.aggregations())
        assert links_a == links_b

    def test_different_seed_differs(self):
        a = generate_university(GeneratorConfig(seed=5, students=50))
        b = generate_university(GeneratorConfig(seed=6, students=50))
        link = next(l for l in a.db.schema.aggregations()
                    if l.name == "enrolled")
        pairs_a = {(x.value, y.value) for x, y in a.db.link_pairs(link)}
        pairs_b = {(x.value, y.value) for x, y in b.db.link_pairs(link)}
        assert pairs_a != pairs_b


class TestShape:
    def test_sizes_match_config(self):
        config = GeneratorConfig(departments=4, courses=10,
                                 sections_per_course=3, teachers=7,
                                 students=25, grads=5, tas=2, faculty=3)
        data = generate_university(config)
        assert len(data.all_of("Department")) == 4
        assert len(data.all_of("Course")) == 10
        assert len(data.all_of("Section")) == 30
        assert len(data.all_of("Teacher")) == 7
        assert len(data.all_of("Student")) == 25
        assert len(data.all_of("Grad")) == 5
        assert len(data.all_of("TA")) == 2

    def test_every_section_has_a_teacher(self):
        data = generate_university(GeneratorConfig())
        link = next(l for l in data.db.schema.aggregations()
                    if l.name == "teaches")
        taught = {s for _, s in data.db.link_pairs(link)}
        sections = {e.oid for e in data.all_of("Section")}
        assert sections <= taught

    def test_prereq_dag_is_acyclic_by_construction(self):
        data = generate_university(GeneratorConfig(courses=30,
                                                   prereqs_per_course=2))
        link = next(l for l in data.db.schema.aggregations()
                    if l.name == "prereq")
        # Edges always point from later-created course to earlier.
        for a, b in data.db.link_pairs(link):
            assert a.value > b.value

    def test_cyclic_prereqs_option(self):
        data = generate_university(GeneratorConfig(
            courses=30, prereqs_per_course=1, prereq_cyclic=True, seed=1))
        link = next(l for l in data.db.schema.aggregations()
                    if l.name == "prereq")
        assert any(a.value < b.value
                   for a, b in data.db.link_pairs(link))

    def test_generated_database_audits_clean(self):
        data = generate_university(GeneratorConfig())
        assert check_database(data.db) == []

    def test_queries_run_on_generated_data(self):
        from repro.subdb import Universe
        from repro.oql import QueryProcessor
        data = generate_university(GeneratorConfig(seed=3))
        qp = QueryProcessor(Universe(data.db))
        result = qp.execute("context Teacher * Section * Course")
        assert len(result.subdatabase) > 0
