"""Tests for incremental maintenance: per-event delta semantics,
eligibility fallbacks, controller integration, and a hypothesis sweep
asserting incremental == from-scratch under random update sequences."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.database import Database
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.rules.engine import RuleEngine
from repro.rules.incremental import IncrementalRule, NotIncremental
from repro.rules.rule import parse_rule
from repro.subdb.universe import Universe
from repro.university import build_paper_database


def chain_db():
    """A -ab-> B -bc-> C with attribute n on every class."""
    schema = Schema()
    for cls in "ABC":
        schema.add_eclass(cls)
        schema.add_attribute(cls, "n", INTEGER)
    schema.add_association("A", "B", name="ab")
    schema.add_association("B", "C", name="bc")
    db = Database(schema)
    objs = {}
    for cls in "ABC":
        for i in range(4):
            objs[f"{cls.lower()}{i}"] = db.insert(cls, f"{cls.lower()}{i}",
                                                  n=i)
    return db, objs


def maintainer(db, text):
    universe = Universe(db)
    rule = parse_rule(text)
    inc = IncrementalRule(rule, universe)
    db.add_listener(inc.on_event)
    inc.initialize()
    return inc


def fresh_rows(db, text):
    from repro.oql.evaluator import PatternEvaluator
    rule = parse_rule(text)
    source = PatternEvaluator(Universe(db)).evaluate(rule.context,
                                                     rule.where)
    return {tuple(p.values) for p in source.patterns}


RULE_ABC = "if context A * B * C then X (A, C)"


class TestEligibility:
    def test_loop_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context Course * Course_1 ^* then X "
                          "(Course, Course_)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_braces_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context {Grad} * Advising then X (Grad)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_aggregation_rejected(self):
        data = build_paper_database()
        rule = parse_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 3 then X (Course)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_derived_source_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context Department * Suggest_offer:Course "
                          "then X (Department)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_plain_chain_accepted(self):
        db, _ = chain_db()
        maintainer(db, RULE_ABC)


class TestDeltaSemantics:
    def test_associate_adds_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        assert inc.rows == set()
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        assert inc.rows == {(o["a0"].oid, o["b0"].oid, o["c0"].oid)}
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_dissociate_removes_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        db.dissociate(o["a0"], "ab", o["b0"])
        assert inc.rows == set()

    def test_delete_removes_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        db.delete(o["b0"].oid)
        assert inc.rows == set()
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_new_link_fans_out(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["b0"], "bc", o["c0"])
        db.associate(o["b0"], "bc", o["c1"])
        db.associate(o["a0"], "ab", o["b0"])  # one event, two matches
        assert len(inc.rows) == 2
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_intra_class_condition_respected(self):
        text = "if context A * B [n >= 2] * C then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a0"], "ab", o["b1"])   # n=1: filtered
        db.associate(o["b1"], "bc", o["c0"])
        db.associate(o["a0"], "ab", o["b2"])   # n=2: kept
        db.associate(o["b2"], "bc", o["c0"])
        assert inc.rows == fresh_rows(db, text)
        assert all(row[1] == o["b2"].oid for row in inc.rows)

    def test_set_attribute_moves_object_in_and_out(self):
        text = "if context A * B [n >= 2] * C then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a0"], "ab", o["b1"])
        db.associate(o["b1"], "bc", o["c0"])
        assert inc.rows == set()
        db.set_attribute(o["b1"].oid, "n", 5)     # now passes
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == 1
        db.set_attribute(o["b1"].oid, "n", 0)     # fails again
        assert inc.rows == set()

    def test_where_comparison_respected(self):
        text = "if context A * B * C where A.n < C.n then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a2"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c1"])   # a2.n=2 !< c1.n=1
        db.associate(o["b0"], "bc", o["c3"])   # a2.n=2 < c3.n=3
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == 1

    def test_complement_edge_roles_swap(self):
        text = "if context A ! B then X (A, B)"
        db, o = chain_db()
        inc = maintainer(db, text)
        assert len(inc.rows) == 16  # 4x4, nothing associated
        db.associate(o["a0"], "ab", o["b0"])    # removes one complement
        assert len(inc.rows) == 15
        assert inc.rows == fresh_rows(db, text)
        db.dissociate(o["a0"], "ab", o["b0"])   # restores it
        assert len(inc.rows) == 16
        assert inc.rows == fresh_rows(db, text)

    def test_insert_with_complement_edges(self):
        text = "if context A ! B then X (A, B)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.insert("B", "b9", n=9)
        assert len(inc.rows) == 20
        assert inc.rows == fresh_rows(db, text)

    def test_single_class_context_tracks_inserts_and_deletes(self):
        text = "if context A [n >= 1] then X (A)"
        db, o = chain_db()
        inc = maintainer(db, text)
        assert len(inc.rows) == 3
        fresh = db.insert("A", "a9", n=9)
        assert len(inc.rows) == 4
        db.delete(fresh.oid)
        assert len(inc.rows) == 3
        assert inc.rows == fresh_rows(db, text)

    def test_batch_replays_sub_events(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        with db.batch():
            db.associate(o["a0"], "ab", o["b0"])
            db.associate(o["b0"], "bc", o["c0"])
            db.associate(o["a1"], "ab", o["b0"])
        assert inc.rows == fresh_rows(db, RULE_ABC)
        assert len(inc.rows) == 2

    def test_identity_edges_supported(self):
        data = build_paper_database()
        text = "if context TA * Teacher * Section then X (TA, Section)"
        inc = maintainer(data.db, text)
        before = set(inc.rows)
        db = data.db
        db.associate(data["ta1"], "teaches", data["s4"])
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == len(before) + 1


class TestControllerIntegration:
    def _engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section * Course "
                        "then TC (Teacher, Course)", label="R1")
        engine.refresh()
        return data, engine

    def test_updates_refresh_incrementally(self):
        data, engine = self._engine()
        before_derivations = engine.stats.total_derivations()
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert engine.stats.total_derivations() == before_derivations
        assert engine.stats.incremental_refreshes == 1
        result = engine.query(
            "context TC:Teacher * TC:Course select Teacher[name] title "
            "display")
        assert ("Silva", "Expert Systems") in result.table.rows

    def test_incremental_equals_full(self):
        data, engine = self._engine()
        data.db.associate(data["t4"], "teaches", data["s5"])
        data.db.dissociate(data["t1"], "teaches", data["s2"])
        maintained = engine.universe.get_subdb("TC").patterns
        fresh = engine.derive("TC", force=True).patterns
        assert maintained == fresh

    def test_ineligible_rule_falls_back_to_full(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)", label="R2")
        engine.refresh()
        before = engine.stats.derivations["Suggest_offer"]
        student = data.db.insert("Student", name="x", **{"SS#": "x"})
        data.db.associate(student, "enrolled", data["s5"])
        assert engine.stats.derivations["Suggest_offer"] > before
        assert engine.stats.incremental_refreshes == 0

    def test_post_targets_still_lazy(self):
        from repro.rules.control import EvaluationMode
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS",
                        mode=EvaluationMode.POST_EVALUATED)
        engine.derive("TS")
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert not engine.universe.has_subdb("TS")
        assert engine.is_stale("TS")


class TestIncrementalProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("link_ab"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("link_bc"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("set_n"), st.integers(0, 3),
                      st.integers(0, 9)),
        ), min_size=0, max_size=20))
    def test_incremental_always_equals_fresh(self, ops):
        text = "if context A * B [n >= 2] * C where A.n < C.n then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        linked = {"ab": set(), "bc": set()}
        for op in ops:
            if op[0] == "link_ab":
                _, i, j = op
                src, dst = o[f"a{i}"], o[f"b{j}"]
                if (i, j) in linked["ab"]:
                    db.dissociate(src, "ab", dst)
                    linked["ab"].discard((i, j))
                else:
                    db.associate(src, "ab", dst)
                    linked["ab"].add((i, j))
            elif op[0] == "link_bc":
                _, i, j = op
                src, dst = o[f"b{i}"], o[f"c{j}"]
                if (i, j) in linked["bc"]:
                    db.dissociate(src, "bc", dst)
                    linked["bc"].discard((i, j))
                else:
                    db.associate(src, "bc", dst)
                    linked["bc"].add((i, j))
            else:
                _, i, value = op
                db.set_attribute(o[f"b{i}"].oid, "n", value)
            assert inc.rows == fresh_rows(db, text)
