"""Tests for incremental maintenance: per-event delta semantics,
eligibility fallbacks, controller integration, and a hypothesis sweep
asserting incremental == from-scratch under random update sequences."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.model.database import Database
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.rules.engine import RuleEngine
from repro.rules.incremental import IncrementalRule, NotIncremental
from repro.rules.rule import parse_rule
from repro.subdb.universe import Universe
from repro.university import build_paper_database


def chain_db():
    """A -ab-> B -bc-> C with attribute n on every class."""
    schema = Schema()
    for cls in "ABC":
        schema.add_eclass(cls)
        schema.add_attribute(cls, "n", INTEGER)
    schema.add_association("A", "B", name="ab")
    schema.add_association("B", "C", name="bc")
    db = Database(schema)
    objs = {}
    for cls in "ABC":
        for i in range(4):
            objs[f"{cls.lower()}{i}"] = db.insert(cls, f"{cls.lower()}{i}",
                                                  n=i)
    return db, objs


def maintainer(db, text):
    universe = Universe(db)
    rule = parse_rule(text)
    inc = IncrementalRule(rule, universe)
    db.add_listener(inc.on_event)
    inc.initialize()
    return inc


def fresh_rows(db, text):
    from repro.oql.evaluator import PatternEvaluator
    rule = parse_rule(text)
    source = PatternEvaluator(Universe(db)).evaluate(rule.context,
                                                     rule.where)
    return {tuple(p.values) for p in source.patterns}


RULE_ABC = "if context A * B * C then X (A, C)"


class TestEligibility:
    def test_loop_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context Course * Course_1 ^* then X "
                          "(Course, Course_)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_braces_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context {Grad} * Advising then X (Grad)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_aggregation_rejected(self):
        data = build_paper_database()
        rule = parse_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 3 then X (Course)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_derived_source_rejected(self):
        data = build_paper_database()
        rule = parse_rule("if context Department * Suggest_offer:Course "
                          "then X (Department)")
        with pytest.raises(NotIncremental):
            IncrementalRule(rule, Universe(data.db))

    def test_plain_chain_accepted(self):
        db, _ = chain_db()
        maintainer(db, RULE_ABC)


class TestDeltaSemantics:
    def test_associate_adds_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        assert inc.rows == set()
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        assert inc.rows == {(o["a0"].oid, o["b0"].oid, o["c0"].oid)}
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_dissociate_removes_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        db.dissociate(o["a0"], "ab", o["b0"])
        assert inc.rows == set()

    def test_delete_removes_matches(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        db.delete(o["b0"].oid)
        assert inc.rows == set()
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_new_link_fans_out(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        db.associate(o["b0"], "bc", o["c0"])
        db.associate(o["b0"], "bc", o["c1"])
        db.associate(o["a0"], "ab", o["b0"])  # one event, two matches
        assert len(inc.rows) == 2
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_intra_class_condition_respected(self):
        text = "if context A * B [n >= 2] * C then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a0"], "ab", o["b1"])   # n=1: filtered
        db.associate(o["b1"], "bc", o["c0"])
        db.associate(o["a0"], "ab", o["b2"])   # n=2: kept
        db.associate(o["b2"], "bc", o["c0"])
        assert inc.rows == fresh_rows(db, text)
        assert all(row[1] == o["b2"].oid for row in inc.rows)

    def test_set_attribute_moves_object_in_and_out(self):
        text = "if context A * B [n >= 2] * C then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a0"], "ab", o["b1"])
        db.associate(o["b1"], "bc", o["c0"])
        assert inc.rows == set()
        db.set_attribute(o["b1"].oid, "n", 5)     # now passes
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == 1
        db.set_attribute(o["b1"].oid, "n", 0)     # fails again
        assert inc.rows == set()

    def test_where_comparison_respected(self):
        text = "if context A * B * C where A.n < C.n then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.associate(o["a2"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c1"])   # a2.n=2 !< c1.n=1
        db.associate(o["b0"], "bc", o["c3"])   # a2.n=2 < c3.n=3
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == 1

    def test_complement_edge_roles_swap(self):
        text = "if context A ! B then X (A, B)"
        db, o = chain_db()
        inc = maintainer(db, text)
        assert len(inc.rows) == 16  # 4x4, nothing associated
        db.associate(o["a0"], "ab", o["b0"])    # removes one complement
        assert len(inc.rows) == 15
        assert inc.rows == fresh_rows(db, text)
        db.dissociate(o["a0"], "ab", o["b0"])   # restores it
        assert len(inc.rows) == 16
        assert inc.rows == fresh_rows(db, text)

    def test_insert_with_complement_edges(self):
        text = "if context A ! B then X (A, B)"
        db, o = chain_db()
        inc = maintainer(db, text)
        db.insert("B", "b9", n=9)
        assert len(inc.rows) == 20
        assert inc.rows == fresh_rows(db, text)

    def test_single_class_context_tracks_inserts_and_deletes(self):
        text = "if context A [n >= 1] then X (A)"
        db, o = chain_db()
        inc = maintainer(db, text)
        assert len(inc.rows) == 3
        fresh = db.insert("A", "a9", n=9)
        assert len(inc.rows) == 4
        db.delete(fresh.oid)
        assert len(inc.rows) == 3
        assert inc.rows == fresh_rows(db, text)

    def test_batch_replays_sub_events(self):
        db, o = chain_db()
        inc = maintainer(db, RULE_ABC)
        with db.batch():
            db.associate(o["a0"], "ab", o["b0"])
            db.associate(o["b0"], "bc", o["c0"])
            db.associate(o["a1"], "ab", o["b0"])
        assert inc.rows == fresh_rows(db, RULE_ABC)
        assert len(inc.rows) == 2

    def test_identity_edges_supported(self):
        data = build_paper_database()
        text = "if context TA * Teacher * Section then X (TA, Section)"
        inc = maintainer(data.db, text)
        before = set(inc.rows)
        db = data.db
        db.associate(data["ta1"], "teaches", data["s4"])
        assert inc.rows == fresh_rows(db, text)
        assert len(inc.rows) == len(before) + 1


class TestControllerIntegration:
    def _engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section * Course "
                        "then TC (Teacher, Course)", label="R1")
        engine.refresh()
        return data, engine

    def test_updates_refresh_incrementally(self):
        data, engine = self._engine()
        before_derivations = engine.stats.total_derivations()
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert engine.stats.total_derivations() == before_derivations
        assert engine.stats.incremental_refreshes == 1
        result = engine.query(
            "context TC:Teacher * TC:Course select Teacher[name] title "
            "display")
        assert ("Silva", "Expert Systems") in result.table.rows

    def test_incremental_equals_full(self):
        data, engine = self._engine()
        data.db.associate(data["t4"], "teaches", data["s5"])
        data.db.dissociate(data["t1"], "teaches", data["s2"])
        maintained = engine.universe.get_subdb("TC").patterns
        fresh = engine.derive("TC", force=True).patterns
        assert maintained == fresh

    def test_ineligible_rule_falls_back_to_full(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)", label="R2")
        engine.refresh()
        before = engine.stats.derivations["Suggest_offer"]
        student = data.db.insert("Student", name="x", **{"SS#": "x"})
        data.db.associate(student, "enrolled", data["s5"])
        assert engine.stats.derivations["Suggest_offer"] > before
        assert engine.stats.incremental_refreshes == 0

    def test_post_targets_still_lazy(self):
        from repro.rules.control import EvaluationMode
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS",
                        mode=EvaluationMode.POST_EVALUATED)
        engine.derive("TS")
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert not engine.universe.has_subdb("TS")
        assert engine.is_stale("TS")


class TestIncrementalProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("link_ab"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("link_bc"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("set_n"), st.integers(0, 3),
                      st.integers(0, 9)),
        ), min_size=0, max_size=20))
    def test_incremental_always_equals_fresh(self, ops):
        text = "if context A * B [n >= 2] * C where A.n < C.n then X (A, C)"
        db, o = chain_db()
        inc = maintainer(db, text)
        linked = {"ab": set(), "bc": set()}
        for op in ops:
            if op[0] == "link_ab":
                _, i, j = op
                src, dst = o[f"a{i}"], o[f"b{j}"]
                if (i, j) in linked["ab"]:
                    db.dissociate(src, "ab", dst)
                    linked["ab"].discard((i, j))
                else:
                    db.associate(src, "ab", dst)
                    linked["ab"].add((i, j))
            elif op[0] == "link_bc":
                _, i, j = op
                src, dst = o[f"b{i}"], o[f"c{j}"]
                if (i, j) in linked["bc"]:
                    db.dissociate(src, "bc", dst)
                    linked["bc"].discard((i, j))
                else:
                    db.associate(src, "bc", dst)
                    linked["bc"].add((i, j))
            else:
                _, i, value = op
                db.set_attribute(o[f"b{i}"].oid, "n", value)
            assert inc.rows == fresh_rows(db, text)


def flagged_maintainer(db, text):
    """A maintainer whose listener checks that every on_event change
    flag exactly matches whether the match set moved."""
    universe = Universe(db)
    rule = parse_rule(text)
    inc = IncrementalRule(rule, universe)
    inc.initialize()
    flags = []

    def listener(event):
        before = set(inc.rows)
        flag = inc.on_event(event)
        assert flag == (set(inc.rows) != before), \
            f"flag {flag} but rows {'moved' if inc.rows != before else 'did not move'}"
        flags.append(flag)

    db.add_listener(listener)
    return inc, flags


class TestChangeFlags:
    def test_duplicate_associate_reports_no_change(self):
        db, o = chain_db()
        inc, flags = flagged_maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        assert flags[-1] is True
        db.associate(o["a0"], "ab", o["b0"])   # re-link: same state
        assert flags[-1] is False
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_irrelevant_link_reports_no_change(self):
        db, o = chain_db()
        inc, flags = flagged_maintainer(db, RULE_ABC)
        db.associate(o["b0"], "bc", o["c0"])   # no A attached: no match
        assert flags[-1] is False
        assert inc.rows == set()

    def test_membership_preserving_set_attribute(self):
        db, o = chain_db()
        inc, flags = flagged_maintainer(db, RULE_ABC)
        db.associate(o["a0"], "ab", o["b0"])
        db.associate(o["b0"], "bc", o["c0"])
        db.set_attribute(o["b0"].oid, "n", 7)  # no condition involved
        assert flags[-1] is False
        assert inc.rows == fresh_rows(db, RULE_ABC)

    def test_equal_size_swap_reports_change(self):
        """A SET_ATTRIBUTE replacing one match with another leaves the
        count unchanged; the old len() comparison missed it."""
        text = "if context A * B where A.n = B.n then X (A, B)"
        db, o = chain_db()
        db.associate(o["a1"], "ab", o["b1"])
        db.associate(o["a1"], "ab", o["b2"])
        inc, flags = flagged_maintainer(db, text)
        assert inc.rows == {(o["a1"].oid, o["b1"].oid)}
        db.set_attribute(o["a1"].oid, "n", 2)
        assert flags[-1] is True
        assert inc.rows == {(o["a1"].oid, o["b2"].oid)}
        assert inc.rows == fresh_rows(db, text)


class TestWhereKeepsErrors:
    TEXT = "if context A * B where C.n > 0 then X (A)"

    def test_unknown_reference_raises_like_evaluator(self):
        from repro.errors import OQLSemanticError
        db, o = chain_db()
        inc = maintainer(db, self.TEXT)     # empty set: no rows checked
        with pytest.raises(OQLSemanticError) as incremental_error:
            db.associate(o["a0"], "ab", o["b0"])
        with pytest.raises(OQLSemanticError) as evaluator_error:
            fresh_rows(db, self.TEXT)
        assert str(incremental_error.value) == str(evaluator_error.value)
        assert "not a context class" in str(incremental_error.value)

    def test_ambiguous_reference_raises(self):
        from repro.errors import OQLSemanticError
        from repro.oql.evaluator import resolve_slot_index
        from repro.subdb.refs import ClassRef
        slots = [ClassRef("A", alias=1), ClassRef("A", alias=2)]
        with pytest.raises(OQLSemanticError, match="ambiguous"):
            resolve_slot_index(slots, ClassRef("A"))

    def test_unqualified_reference_raises(self):
        # The parser rejects unqualified where attributes; the runtime
        # guard covers programmatically built conditions.
        from repro.errors import OQLSemanticError
        from repro.oql.ast import AttrRef, Comparison, Literal
        db, o = chain_db()
        db.associate(o["a0"], "ab", o["b0"])
        rule = parse_rule("if context A * B then X (A)")
        object.__setattr__(
            rule, "where",
            (Comparison(AttrRef("n"), ">", Literal(0)),))
        inc = IncrementalRule(rule, Universe(db))
        inc.rows = {(o["a0"].oid, o["b0"].oid)}
        inc._initialized = True
        with pytest.raises(OQLSemanticError, match="must be qualified"):
            inc._where_keeps((o["a0"].oid, o["b0"].oid))


class TestControllerSkipsNoOps:
    def _engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="incremental")
        engine.add_rule("if context Teacher * Section then TS "
                        "(Teacher, Section)", label="TS")
        engine.add_rule("if context TS:Teacher then TT (Teacher)",
                        label="TT")
        engine.refresh()
        return data, engine

    def test_noop_event_keeps_stored_results(self):
        data, engine = self._engine()
        # Warm up the lazily-created maintainers (the first event after
        # creation conservatively counts as a change).
        data.db.associate(data["t1"], "teaches", data["s2"])
        before_tt = engine.stats.derivations["TT"]
        before_refreshes = engine.stats.incremental_refreshes
        # Re-associating an existing link emits ASSOCIATE but changes
        # nothing: both targets keep their stored values untouched.
        data.db.associate(data["t1"], "teaches", data["s2"])
        assert engine.stats.incremental_refreshes == before_refreshes
        assert engine.stats.derivations["TT"] == before_tt
        assert engine.stats.refreshes_skipped >= 2
        assert engine.universe.has_subdb("TS")
        assert engine.universe.has_subdb("TT")
        assert not engine.is_stale("TS")
        assert not engine.is_stale("TT")

    def test_real_change_still_propagates(self):
        data, engine = self._engine()
        before_tt = engine.stats.derivations["TT"]
        data.db.associate(data["t4"], "teaches", data["s5"])
        assert engine.stats.incremental_refreshes >= 1
        assert engine.stats.derivations["TT"] > before_tt
        assert ("t4", "s5") in engine.universe.get_subdb("TS").labels()


class TestDifferentialStreams:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.one_of(
            st.tuples(st.just("link_ab"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("link_bc"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("relink"), st.integers(0, 3),
                      st.integers(0, 3)),
            st.tuples(st.just("set_a"), st.integers(0, 3),
                      st.integers(0, 4)),
            st.tuples(st.just("set_c"), st.integers(0, 3),
                      st.integers(0, 4)),
        ), min_size=0, max_size=25))
    def test_flags_and_rows_track_fresh_derivation(self, ops):
        """Random streams including no-op re-associates and
        equal-size-preserving attribute flips: the maintained set always
        equals a fresh derivation, and every change flag is exact
        (asserted inside the flagged listener)."""
        text = "if context A * B * C where A.n < C.n then X (A, C)"
        db, o = chain_db()
        inc, _flags = flagged_maintainer(db, text)
        linked = {"ab": set(), "bc": set()}
        for op in ops:
            kind = op[0]
            if kind in ("link_ab", "link_bc"):
                _, i, j = op
                name = kind.split("_")[1]
                src = o[f"{name[0]}{i}"]
                dst = o[f"{name[1]}{j}"]
                if (i, j) in linked[name]:
                    db.dissociate(src, name, dst)
                    linked[name].discard((i, j))
                else:
                    db.associate(src, name, dst)
                    linked[name].add((i, j))
            elif kind == "relink":
                _, i, j = op
                if (i, j) in linked["ab"]:   # duplicate: no-op event
                    db.associate(o[f"a{i}"], "ab", o[f"b{j}"])
            elif kind == "set_a":
                _, i, value = op
                db.set_attribute(o[f"a{i}"].oid, "n", value)
            else:
                _, i, value = op
                db.set_attribute(o[f"c{i}"].oid, "n", value)
            assert inc.rows == fresh_rows(db, text)
