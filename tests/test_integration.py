"""End-to-end integration tests on generated (non-paper) data: deep rule
chains, closure-property pipelines, mixed control strategies, and a
from-scratch schema built through the public API only."""

import pytest

from repro import (
    Database,
    EvaluationMode,
    INTEGER,
    QueryProcessor,
    RuleEngine,
    STRING,
    Schema,
    Universe,
)
from repro.university import GeneratorConfig, generate_university


class TestGeneratedDataPipeline:
    @pytest.fixture(scope="class")
    def engine(self):
        data = generate_university(GeneratorConfig(
            departments=3, courses=12, sections_per_course=2,
            teachers=6, students=60, enrollments_per_student=3,
            tas=3, grads=10, faculty=4, seed=11))
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Teacher * Section * Course "
            "then Teacher_course (Teacher, Course)", label="R1")
        engine.add_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 5 "
            "then Popular (Course)", label="P")
        engine.add_rule(
            "if context Teacher_course:Teacher * Teacher_course:Course "
            "* Popular:Course_1 then Stub (Teacher)", label="junk")
        return engine

    def test_chain_queries(self, engine):
        result = engine.query(
            "context Popular:Course select title display")
        assert len(result.table) > 0

    def test_derived_of_derived(self, engine):
        engine.add_rule(
            "if context Teacher_course:Teacher * Teacher_course:Course "
            "then Busy (Teacher)", label="B")
        result = engine.query("context Busy:Teacher select name")
        assert len(result.table) > 0

    def test_counts_consistent_with_manual_evaluation(self, engine):
        # COUNT(Student by Course) > 5 must agree with counting links.
        popular = engine.derive("Popular")
        db = engine.db
        enrolled = next(l for l in db.schema.aggregations()
                        if l.name == "enrolled")
        course_link = next(l for l in db.schema.aggregations()
                           if l.key == ("Section", "course"))
        for pattern in popular.patterns:
            course = pattern[0]
            sections = db.linked(course, course_link, from_owner=False)
            students = set()
            for section in sections:
                students |= db.linked(section, enrolled,
                                      from_owner=False)
            assert len(students) > 5


class TestCustomSchemaFromScratch:
    """A non-university domain exercised purely through the public API:
    a parts catalog with a containment hierarchy (the CAD/CAM flavor the
    paper's introduction motivates)."""

    @pytest.fixture
    def engine(self):
        schema = Schema("parts")
        schema.add_eclass("Part")
        schema.add_eclass("Assembly")
        schema.add_eclass("Supplier")
        schema.add_subclass("Part", "Assembly")
        schema.add_attribute("Part", "name", STRING)
        schema.add_attribute("Part", "cost", INTEGER)
        schema.add_association("Part", "Part", name="contains",
                               many=True)
        schema.add_association("Supplier", "Part", name="supplies",
                               many=True)
        db = Database(schema)
        wheel = db.insert("Part", "wheel", name="wheel", cost=10)
        frame = db.insert("Part", "frame", name="frame", cost=50)
        bike = db.insert("Assembly", "bike", name="bike", cost=200)
        fleet = db.insert("Assembly", "fleet", name="fleet", cost=2000)
        acme = db.insert("Supplier", "acme")
        db.associate(bike, "contains", wheel)
        db.associate(bike, "contains", frame)
        db.associate(fleet, "contains", bike)
        db.associate(acme, "supplies", wheel)
        engine = RuleEngine(db)
        return engine

    def test_containment_closure(self, engine):
        result = engine.query("context Part * Part_1 ^*")
        chains = result.subdatabase.labels()
        assert ("fleet", "bike", "wheel") in chains or \
            ("fleet", "bike", "frame") in chains

    def test_rule_over_hierarchy(self, engine):
        engine.add_rule(
            "if context Part * Part_1 ^* then Contains_all "
            "(Part, Part_)", label="C")
        subdb = engine.derive("Contains_all")
        fleet_parts = {l[1:] for l in subdb.labels() if l[0] == "fleet"}
        assert ("bike", "wheel") in fleet_parts

    def test_supplier_reaches_derived(self, engine):
        engine.add_rule(
            "if context Part * Part_1 ^* then Contains_all "
            "(Part, Part_)", label="C")
        result = engine.query(
            "context Supplier * Contains_all:Part "
            "select Part[name] display")
        assert ("wheel",) in result.table.rows


class TestMixedControlStrategies:
    def test_pre_and_post_targets_interleave_correctly(self):
        data = generate_university(GeneratorConfig(seed=13))
        engine = RuleEngine(data.db, controller="result")
        engine.add_rule("if context Teacher * Section then A "
                        "(Teacher, Section)", label="a",
                        mode=EvaluationMode.POST_EVALUATED)
        engine.add_rule("if context A:Teacher then B (Teacher)",
                        label="b", mode=EvaluationMode.PRE_EVALUATED)
        engine.add_rule("if context B:Teacher then C (Teacher)",
                        label="c", mode=EvaluationMode.POST_EVALUATED)
        engine.refresh()
        teacher = data.all_of("Teacher")[0]
        section = data.all_of("Section")[0]
        db = data.db
        # Toggle a link; the PRE result B refreshes eagerly, C lazily.
        link_exists = section.oid in db.linked(
            teacher.oid, db.schema.resolve_link("Teacher", "Section").link)
        if link_exists:
            db.dissociate(teacher, "teaches", section)
        else:
            db.associate(teacher, "teaches", section)
        assert engine.universe.has_subdb("B")
        fresh_b = engine.derive("B", force=True)
        assert engine.universe.get_subdb("B").patterns == fresh_b.patterns
        # C recomputes on demand and matches a manual derivation.
        c1 = engine.query("context C:Teacher").subdatabase.patterns
        c2 = engine.derive("C", force=True).patterns
        assert c1 == c2


class TestScaleSmoke:
    def test_medium_database_end_to_end(self):
        data = generate_university(GeneratorConfig(
            departments=5, courses=40, sections_per_course=3,
            teachers=20, students=400, enrollments_per_student=4,
            tas=8, grads=40, faculty=10, seed=17))
        qp = QueryProcessor(Universe(data.db))
        result = qp.execute(
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 20")
        # Sanity: some courses pass, none fail the recount check.
        assert result.subdatabase is not None
        stats = data.db.stats()
        assert stats["objects"] > 500
