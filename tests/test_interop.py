"""Tests for the NetworkX interoperability layer, including a third
independent cross-check of loop-based transitive closure (evaluator vs
Datalog vs networkx reachability)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnknownAssociationError
from repro.interop import (
    closure_equals_reachability,
    link_graph,
    schema_graph,
    subdatabase_graph,
)
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def data():
    return build_paper_database()


class TestSchemaGraph:
    def test_nodes_typed(self, data):
        graph = schema_graph(data.db.schema)
        assert graph.nodes["Teacher"]["node_type"] == "eclass"
        assert graph.nodes["string"]["node_type"] == "dclass"

    def test_edges_typed(self, data):
        graph = schema_graph(data.db.schema)
        assert graph.get_edge_data("Teacher", "Section",
                                   key="teaches")["kind"] == "A"
        assert graph.get_edge_data("TA", "Grad", key="G")["kind"] == "G"

    def test_generalization_reachability(self, data):
        graph = schema_graph(data.db.schema)
        g_only = nx.subgraph_view(
            graph, filter_edge=lambda u, v, k: k == "G")
        assert nx.has_path(g_only, "TA", "Person")


class TestLinkGraph:
    def test_pairs_present(self, data):
        graph = link_graph(data.db, "Course", "prereq")
        assert graph.has_edge(data.oid("c4").value, data.oid("c1").value)

    def test_by_label(self, data):
        graph = link_graph(data.db, "Course", "prereq", by_label=True)
        assert graph.has_edge("c4", "c1")

    def test_unknown_link(self, data):
        with pytest.raises(UnknownAssociationError):
            link_graph(data.db, "Course", "bogus")


class TestSubdatabaseGraph:
    def test_figure_31b_structure(self, data):
        graph = subdatabase_graph(build_sdb(data), by_label=True)
        assert graph.has_edge(("Teacher", "t2"), ("Section", "s3"))
        assert graph.has_edge(("Section", "s3"), ("Course", "c2"))
        assert ("Teacher", "t4") in graph.nodes   # isolated pattern
        assert graph.degree[("Teacher", "t4")] == 0

    def test_component_count(self, data):
        graph = subdatabase_graph(build_sdb(data), by_label=True)
        # {t1,t2,s2,s3,c1,c2}, {t3,s4}, {s5,c4}, {t4}, {c3}
        assert nx.number_connected_components(graph) == 5


class TestClosureCrossCheck:
    def test_prereq_closure_matches_reachability(self, data):
        evaluator = PatternEvaluator(Universe(data.db))
        subdb = evaluator.evaluate(parse_expression("Course * Course_1 ^*"))
        graph = link_graph(data.db, "Course", "prereq")
        assert closure_equals_reachability(subdb, graph)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
            lambda e: e[0] < e[1]),
        min_size=0, max_size=16).map(set))
    def test_random_dags_match_networkx(self, edges):
        from repro.model.database import Database
        from repro.model.schema import Schema
        schema = Schema()
        schema.add_eclass("N")
        schema.add_association("N", "N", name="next")
        db = Database(schema)
        nodes = {}
        for value in sorted({x for e in edges for x in e}):
            nodes[value] = db.insert("N", f"n{value}")
        for a, b in edges:
            db.associate(nodes[a], "next", nodes[b])
        subdb = PatternEvaluator(Universe(db)).evaluate(
            parse_expression("N * N_1 ^*"))
        graph = link_graph(db, "N", "next")
        for value, entity in nodes.items():
            graph.add_node(entity.oid.value)
        assert closure_equals_reachability(subdb, graph)
