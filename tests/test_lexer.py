"""Unit tests for the tokenizer."""

import pytest

from repro.errors import OQLSyntaxError
from repro.oql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifiers(self):
        assert kinds("Teacher Course_1") == [
            ("ident", "Teacher"), ("ident", "Course_1")]

    def test_hash_in_identifiers(self):
        # The paper's attribute names c#, SS#, section#.
        assert kinds("c# SS# section#") == [
            ("ident", "c#"), ("ident", "SS#"), ("ident", "section#")]

    def test_keywords_case_insensitive(self):
        assert kinds("CONTEXT Where sElEcT") == [
            ("keyword", "context"), ("keyword", "where"),
            ("keyword", "select")]

    def test_agg_functions_are_keywords(self):
        assert kinds("COUNT sum") == [
            ("keyword", "count"), ("keyword", "sum")]

    def test_integers_and_floats(self):
        assert kinds("39 3.5") == [("number", 39), ("number", 3.5)]

    def test_integer_followed_by_dot_is_not_float(self):
        # "A.x" style access after a number never occurs, but a lone
        # trailing dot must not absorb into the number.
        values = kinds("3.x")
        assert values[0] == ("number", 3)
        assert ("op", ".") in values

    def test_strings_single_and_double(self):
        assert kinds("'CIS' \"Math\"") == [
            ("string", "CIS"), ("string", "Math")]

    def test_unterminated_string(self):
        with pytest.raises(OQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        assert [v for _, v in kinds("* ! = != <> < <= > >= ^ { } [ ]")] \
            == ["*", "!", "=", "!=", "!=", "<", "<=", ">", ">=", "^",
                "{", "}", "[", "]"]

    def test_bang_vs_bang_equals(self):
        assert kinds("A != B")[1] == ("op", "!=")
        assert kinds("A ! B")[1] == ("op", "!")

    def test_unexpected_character(self):
        with pytest.raises(OQLSyntaxError):
            tokenize("A @ B")

    def test_positions(self):
        tokens = tokenize("context\n  Teacher")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_error_reports_position(self):
        with pytest.raises(OQLSyntaxError) as err:
            tokenize("abc\n  @")
        assert err.value.line == 2

    def test_token_text_property(self):
        assert tokenize("42")[0].text == "42"
