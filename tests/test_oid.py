"""Unit tests for OIDs and the allocator."""

import pytest

from repro.model.oid import OID, OIDAllocator


class TestOID:
    def test_equality_is_by_value(self):
        assert OID(1) == OID(1)
        assert OID(1) != OID(2)

    def test_label_does_not_affect_equality(self):
        assert OID(1, "t1") == OID(1, "other")

    def test_label_does_not_affect_hash(self):
        assert hash(OID(3, "x")) == hash(OID(3))

    def test_usable_in_sets(self):
        assert len({OID(1, "a"), OID(1, "b"), OID(2)}) == 2

    def test_ordering(self):
        assert OID(1) < OID(2)
        assert OID(2) > OID(1)
        assert OID(1) <= OID(1)
        assert OID(2) >= OID(2)

    def test_sorted_is_by_value(self):
        oids = [OID(3, "c"), OID(1, "a"), OID(2, "b")]
        assert [o.value for o in sorted(oids)] == [1, 2, 3]

    def test_repr_uses_label(self):
        assert repr(OID(5, "t5")) == "t5"

    def test_repr_without_label(self):
        assert repr(OID(5)) == "#5"

    def test_not_equal_to_other_types(self):
        assert OID(1) != 1
        assert not OID(1) == "x"


class TestAllocator:
    def test_monotonic(self):
        alloc = OIDAllocator()
        a, b, c = alloc.allocate(), alloc.allocate(), alloc.allocate()
        assert a.value < b.value < c.value

    def test_unique(self):
        alloc = OIDAllocator()
        oids = {alloc.allocate() for _ in range(100)}
        assert len(oids) == 100

    def test_labels_pass_through(self):
        alloc = OIDAllocator()
        assert alloc.allocate("t1").label == "t1"

    def test_custom_start(self):
        alloc = OIDAllocator(start=100)
        assert alloc.allocate().value == 100

    def test_next_value(self):
        alloc = OIDAllocator()
        alloc.allocate()
        assert alloc.next_value == 2
