"""Unit tests for the operation clause: table building / Select binding,
rendering, and user-defined operations."""

import pytest

from repro.errors import OQLSemanticError
from repro.oql.operations import (
    OperationRegistry,
    Table,
    build_table,
)
from repro.oql.parser import parse_query
from repro.oql.evaluator import PatternEvaluator
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def ctx():
    data = build_paper_database()
    universe = Universe(data.db)
    universe.register(build_sdb(data))
    return data, universe


def run(universe, text):
    query = parse_query(text)
    subdb = PatternEvaluator(universe).evaluate(query.context, query.where)
    return query, subdb


class TestSelectBinding:
    def test_bare_unique_attribute(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context SDB:Teacher * SDB:Section "
                           "select name section# display")
        table = build_table(universe, subdb, query.select)
        assert table.columns == ["SDB:Teacher.name",
                                 "SDB:Section.section#"]

    def test_bare_ambiguous_attribute_rejected(self, ctx):
        _, universe = ctx
        # 'SS#' is visible from both Teacher and Student contexts.
        query, subdb = run(universe,
                           "context Teacher * Section * Student "
                           "select SS# display")
        with pytest.raises(OQLSemanticError) as err:
            build_table(universe, subdb, query.select)
        assert "not unique" in str(err.value)

    def test_qualified_attribute_resolves_ambiguity(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context Teacher * Section * Student "
                           "select Student[SS#] display")
        table = build_table(universe, subdb, query.select)
        assert table.columns == ["Student.SS#"]

    def test_bare_class_name_takes_priority(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context Department * Course select Department")
        table = build_table(universe, subdb, query.select)
        assert set(table.columns) == {"Department.college",
                                      "Department.name"}

    def test_unknown_item_rejected(self, ctx):
        _, universe = ctx
        query, subdb = run(universe, "context Teacher select bogus")
        with pytest.raises(OQLSemanticError):
            build_table(universe, subdb, query.select)

    def test_default_select_is_all_attributes(self, ctx):
        _, universe = ctx
        _, subdb = run(universe, "context Department * Course")
        table = build_table(universe, subdb, None)
        assert "Course.title" in table.columns
        assert "Department.name" in table.columns

    def test_class_item_with_attr_subset(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context Course select Course[title, c#]")
        table = build_table(universe, subdb, query.select)
        assert table.columns == ["Course.title", "Course.c#"]

    def test_class_item_unknown_attr(self, ctx):
        _, universe = ctx
        from repro.errors import UnknownAttributeError
        query, subdb = run(universe, "context Course select Course[bogus]")
        with pytest.raises(UnknownAttributeError):
            build_table(universe, subdb, query.select)


class TestTable:
    def test_rows_deduplicated(self, ctx):
        _, universe = ctx
        # Two patterns (t2,s3,c1) and (t2,s3,c2) give one (name,section#)
        # row after projection.
        query, subdb = run(universe,
                           "context SDB:Teacher * SDB:Section * SDB:Course "
                           "select name section# display")
        table = build_table(universe, subdb, query.select)
        assert len([r for r in table.rows if r[0] == "Jones"]) == 1

    def test_null_rendered(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context {{Grad} * Advising} * Faculty "
                           "select Grad[name] Faculty[name] display")
        table = build_table(universe, subdb, query.select)
        assert "Null" in table.render()

    def test_render_alignment(self):
        table = Table(["a", "long_column"], [(1, "x"), (22, "yy")])
        lines = table.render().splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_column_accessor(self):
        table = Table(["a", "b"], [(1, 2), (3, 4)])
        assert table.column("b") == [2, 4]
        with pytest.raises(OQLSemanticError):
            table.column("zzz")

    def test_len(self):
        assert len(Table(["a"], [(1,), (2,)])) == 2

    def test_rows_deterministic_order(self, ctx):
        _, universe = ctx
        query, subdb = run(universe,
                           "context SDB:Teacher * SDB:Section "
                           "select name display")
        t1 = build_table(universe, subdb, query.select)
        t2 = build_table(universe, subdb, query.select)
        assert t1.rows == t2.rows


class TestOperationRegistry:
    def test_register_and_get_case_insensitive(self):
        registry = OperationRegistry()
        fn = lambda u, s, t: "done"
        registry.register("Rotate", fn)
        assert registry.get("rotate") is fn
        assert "ROTATE" in registry

    def test_unknown_operation(self):
        registry = OperationRegistry()
        with pytest.raises(OQLSemanticError):
            registry.get("hire_employee")
