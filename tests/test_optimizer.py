"""Tests for the greedy chain-join optimizer: result equivalence with
the naive left-to-right join (including a hypothesis sweep), and the
pruning behaviour it exists for."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.database import Database
from repro.model.dclass import INTEGER
from repro.model.schema import Schema
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression, parse_query
from repro.subdb.universe import Universe
from repro.university import GeneratorConfig, build_paper_database, \
    generate_university

QUERIES = [
    "Teacher * Section",
    "Teacher * Section * Course",
    "Department * Course * Section * Student",
    "Department [name = 'CIS'] * Course * Section * Student",
    "Teacher * Section * Course [c# >= 6000]",
    "Teacher ! Section",
    "Teacher * Section ! Course",
    "A_dummy" if False else "Grad * Advising * Faculty",
    "{Teacher * Section} * {Course}",
    "Teacher * {Section * Course} * Department",
    "Course * Course_1",
]


@pytest.fixture(scope="module")
def paper_universe():
    return Universe(build_paper_database().db)


@pytest.fixture(scope="module")
def generated_universe():
    return Universe(generate_university(GeneratorConfig(seed=31)).db)


class TestEquivalence:
    @pytest.mark.parametrize("text", QUERIES)
    def test_same_patterns_paper_db(self, paper_universe, text):
        expr = parse_expression(text)
        fast = PatternEvaluator(paper_universe, optimize=True)
        slow = PatternEvaluator(paper_universe, optimize=False)
        assert fast.evaluate(expr).patterns == \
            slow.evaluate(expr).patterns

    @pytest.mark.parametrize("text", QUERIES)
    def test_same_patterns_generated_db(self, generated_universe, text):
        expr = parse_expression(text)
        fast = PatternEvaluator(generated_universe, optimize=True)
        slow = PatternEvaluator(generated_universe, optimize=False)
        assert fast.evaluate(expr).patterns == \
            slow.evaluate(expr).patterns

    def test_same_patterns_with_where(self, paper_universe):
        query = parse_query(
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39")
        fast = PatternEvaluator(paper_universe, optimize=True)
        slow = PatternEvaluator(paper_universe, optimize=False)
        assert fast.evaluate(query.context, query.where).patterns == \
            slow.evaluate(query.context, query.where).patterns

    def test_same_loop_results(self, paper_universe):
        expr = parse_expression("Course * Course_1 ^*")
        fast = PatternEvaluator(paper_universe, optimize=True)
        slow = PatternEvaluator(paper_universe, optimize=False)
        assert fast.evaluate(expr).patterns == \
            slow.evaluate(expr).patterns


class TestEquivalenceProperty:
    """Random bipartite-ish chains: A -x-> B -y-> C with arbitrary link
    sets; both strategies must produce identical pattern sets."""

    @settings(max_examples=30, deadline=None)
    @given(
        ab=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    max_size=15).map(set),
        bc=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    max_size=15).map(set),
        op1=st.sampled_from(["*", "!"]),
        op2=st.sampled_from(["*", "!"]),
    )
    def test_random_chains(self, ab, bc, op1, op2):
        schema = Schema()
        for cls in "ABC":
            schema.add_eclass(cls)
            schema.add_attribute(cls, "n", INTEGER)
        schema.add_association("A", "B", name="ab")
        schema.add_association("B", "C", name="bc")
        db = Database(schema)
        objs = {}
        for cls in "ABC":
            for i in range(5):
                objs[(cls, i)] = db.insert(cls, f"{cls.lower()}{i}", n=i)
        for a, b in ab:
            db.associate(objs[("A", a)], "ab", objs[("B", b)])
        for b, c in bc:
            db.associate(objs[("B", b)], "bc", objs[("C", c)])
        universe = Universe(db)
        expr = parse_expression(f"A {op1} B {op2} C [n < 3]")
        fast = PatternEvaluator(universe, optimize=True)
        slow = PatternEvaluator(universe, optimize=False)
        assert fast.evaluate(expr).patterns == \
            slow.evaluate(expr).patterns


class TestPruning:
    def test_selective_filter_prunes_intermediate_rows(self):
        """With a highly selective condition at the chain's *right* end,
        the optimized order anchors there; verify by the number of
        distinct frontier endpoints traversed per hop, which both the
        set-based and the compact executor count identically."""
        data = generate_university(GeneratorConfig(
            students=300, courses=20, seed=41))
        universe = Universe(data.db)
        expr = parse_expression(
            "Student * Section * Course [c# = 1000]")
        fast = PatternEvaluator(universe, optimize=True)
        fast.evaluate(expr)
        optimized_calls = fast.last_metrics.edge_traversals
        slow = PatternEvaluator(universe, optimize=False)
        slow.evaluate(expr)
        naive_calls = slow.last_metrics.edge_traversals
        assert optimized_calls < naive_calls

    def test_single_class_context_unaffected(self, paper_universe):
        expr = parse_expression("Teacher")
        result = PatternEvaluator(paper_universe,
                                  optimize=True).evaluate(expr)
        assert len(result) > 0
