"""Tests for the remaining OSAM* association types: interaction (I),
composition (C) and crossproduct (X) — declaration, enforcement,
cascading, audits, and traversal by the association operator."""

import pytest

from repro.errors import ConstraintViolationError, SchemaError
from repro.model.associations import AssociationKind
from repro.model.database import Database
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.model.validation import check_database
from repro.oql import QueryProcessor
from repro.subdb import Universe


@pytest.fixture
def schema():
    s = Schema("factory")
    for cls in ["Machine", "Component", "Operator", "Shift",
                "Assignment", "Slot"]:
        s.add_eclass(cls)
    s.add_attribute("Machine", "name", STRING)
    s.add_attribute("Component", "serial", INTEGER)
    s.add_attribute("Operator", "name", STRING)
    s.add_attribute("Shift", "name", STRING)
    # C: a component is an exclusive part of one machine.
    s.add_composition("Machine", "Component", name="parts", many=True)
    # I: an assignment interacts an operator with a machine.
    s.declare_interaction("Assignment", ["Operator", "Machine"])
    # X: a slot is a unique (Machine, Shift) combination.
    s.declare_crossproduct("Slot", ["Machine", "Shift"])
    return s


@pytest.fixture
def db(schema):
    return Database(schema)


class TestDeclarations:
    def test_composition_link_kind(self, schema):
        link = next(l for l in schema.aggregations()
                    if l.name == "parts")
        assert link.kind is AssociationKind.COMPOSITION

    def test_interaction_creates_required_links(self, schema):
        links = {l.name: l for l in schema.aggregations()
                 if l.owner == "Assignment"}
        assert set(links) == {"operator", "machine"}
        assert all(l.required and not l.many for l in links.values())
        assert all(l.kind is AssociationKind.INTERACTION
                   for l in links.values())

    def test_interaction_needs_two_participants(self, schema):
        with pytest.raises(SchemaError):
            schema.declare_interaction("Shift", ["Machine"])

    def test_crossproduct_registry(self, schema):
        declaration = schema.crossproduct_of("Slot")
        assert declaration.components == ("Machine", "Shift")
        assert schema.crossproduct_of("Machine") is None

    def test_declarations_listed(self, schema):
        assert [i.cls for i in schema.interactions] == ["Assignment"]
        assert [x.cls for x in schema.crossproducts] == ["Slot"]


class TestComposition:
    def test_exclusive_part_of(self, db):
        m1 = db.insert("Machine", name="press")
        m2 = db.insert("Machine", name="lathe")
        part = db.insert("Component", serial=1)
        db.associate(m1, "parts", part)
        with pytest.raises(ConstraintViolationError) as err:
            db.associate(m2, "parts", part)
        assert "exclusive" in str(err.value)

    def test_relink_same_whole_is_fine(self, db):
        m1 = db.insert("Machine", name="press")
        part = db.insert("Component", serial=1)
        db.associate(m1, "parts", part)
        db.associate(m1, "parts", part)

    def test_cascade_delete(self, db):
        m1 = db.insert("Machine", name="press")
        parts = [db.insert("Component", serial=i) for i in range(3)]
        for part in parts:
            db.associate(m1, "parts", part)
        db.delete(m1.oid)
        assert db.extent("Component") == set()

    def test_cascade_is_transitive(self):
        s = Schema()
        s.add_eclass("A")
        s.add_eclass("B")
        s.add_eclass("C")
        s.add_composition("A", "B")
        s.add_composition("B", "C")
        db = Database(s)
        a = db.insert("A")
        b = db.insert("B")
        c = db.insert("C")
        db.associate(a, "B", b)
        db.associate(b, "C", c)
        db.delete(a.oid)
        assert len(db) == 0

    def test_part_deletion_leaves_whole(self, db):
        m1 = db.insert("Machine", name="press")
        part = db.insert("Component", serial=1)
        db.associate(m1, "parts", part)
        db.delete(part.oid)
        assert db.has(m1.oid)

    def test_traversable_by_association_operator(self, db):
        m1 = db.insert("Machine", name="press")
        part = db.insert("Component", serial=7)
        db.associate(m1, "parts", part)
        qp = QueryProcessor(Universe(db))
        result = qp.execute(
            "context Machine * Component select name serial display")
        assert ("press", 7) in result.table.rows


class TestInteraction:
    def test_audit_flags_incomplete_interaction(self, db):
        db.insert("Assignment")
        violations = check_database(db)
        kinds = {(v.kind, v.link_name) for v in violations}
        assert ("interaction", "operator") in kinds
        assert ("interaction", "machine") in kinds

    def test_complete_interaction_audits_clean(self, db):
        op = db.insert("Operator", name="Ada")
        machine = db.insert("Machine", name="press")
        assignment = db.insert("Assignment")
        db.associate(assignment, "operator", op)
        db.associate(assignment, "machine", machine)
        assert check_database(db) == []

    def test_interaction_queryable_as_relationship(self, db):
        op = db.insert("Operator", name="Ada")
        machine = db.insert("Machine", name="press")
        assignment = db.insert("Assignment")
        db.associate(assignment, "operator", op)
        db.associate(assignment, "machine", machine)
        qp = QueryProcessor(Universe(db))
        result = qp.execute(
            "context Operator * Assignment * Machine "
            "select Operator[name] Machine[name] display")
        assert ("Ada", "press") in result.table.rows


class TestCrossproduct:
    def test_duplicate_combination_rejected(self, db):
        machine = db.insert("Machine", name="press")
        shift = db.insert("Shift", name="night")
        slot1 = db.insert("Slot")
        db.associate(slot1, "machine", machine)
        db.associate(slot1, "shift", shift)
        slot2 = db.insert("Slot")
        db.associate(slot2, "machine", machine)
        with pytest.raises(ConstraintViolationError) as err:
            db.associate(slot2, "shift", shift)
        assert "combination" in str(err.value)

    def test_distinct_combinations_allowed(self, db):
        machine = db.insert("Machine", name="press")
        night = db.insert("Shift", name="night")
        day = db.insert("Shift", name="day")
        for shift in (night, day):
            slot = db.insert("Slot")
            db.associate(slot, "machine", machine)
            db.associate(slot, "shift", shift)
        assert check_database(db) == []

    def test_audit_flags_duplicate_loaded_combinations(self, db):
        machine = db.insert("Machine", name="press")
        shift = db.insert("Shift", name="night")
        slots = [db.insert("Slot") for _ in range(2)]
        link_m = next(l for l in db.schema.aggregations()
                      if l.key == ("Slot", "machine"))
        link_s = next(l for l in db.schema.aggregations()
                      if l.key == ("Slot", "shift"))
        for slot in slots:  # bypass associate() (bulk-load path)
            db._link(link_m.key, slot.oid, machine.oid)
            db._link(link_s.key, slot.oid, shift.oid)
        violations = check_database(db)
        assert any(v.kind == "crossproduct" and "duplicates" in str(v)
                   for v in violations)

    def test_audit_flags_incomplete_combination(self, db):
        slot = db.insert("Slot")
        machine = db.insert("Machine", name="press")
        db.associate(slot, "machine", machine)
        violations = check_database(db)
        assert any(v.kind == "crossproduct" and v.link_name == "shift"
                   for v in violations)


class TestRulesOverNewKinds:
    def test_rule_through_interaction_class(self, db):
        from repro.rules.engine import RuleEngine
        op = db.insert("Operator", name="Ada")
        machine = db.insert("Machine", name="press")
        assignment = db.insert("Assignment")
        db.associate(assignment, "operator", op)
        db.associate(assignment, "machine", machine)
        engine = RuleEngine(db)
        engine.add_rule(
            "if context Operator * Assignment * Machine "
            "then Operates (Operator, Machine)")
        subdb = engine.derive("Operates")
        assert len(subdb) == 1
        assert subdb.intension.edge_between(0, 1).kind == "derived"
