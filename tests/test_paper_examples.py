"""The experiment index: every figure, query, and rule of the paper,
reproduced end-to-end.  Each test class cites the artifact it verifies
(see DESIGN.md Section 5 and EXPERIMENTS.md)."""

import pytest

from repro import (
    AmbiguousPathError,
    ClassRef,
    Dictionary,
    EvaluationMode,
    PatternType,
    QueryProcessor,
    RuleChainingMode,
    RuleEngine,
    Universe,
)
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def data():
    return build_paper_database()


@pytest.fixture
def engine(data):
    engine = RuleEngine(data.db)
    engine.universe.register(build_sdb(data))
    return engine


def add_paper_rules(engine):
    engine.add_rule(
        "if context Teacher * Section * Course "
        "then Teacher_course (Teacher, Course)", label="R1")
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * Student "
        "where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context Department * Suggest_offer:Course "
        "where COUNT(Suggest_offer:Course by Department) > 20 "
        "then Deps_need_res (Department)", label="R3")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")


class TestFigure21_UniversitySchema:
    def test_classes_present(self, data):
        schema = data.db.schema
        for cls in ["Person", "Student", "Teacher", "Grad", "Undergrad",
                    "TA", "RA", "Faculty", "Section", "Course",
                    "Department", "Transcript", "Advising"]:
            assert schema.has_eclass(cls)

    def test_person_has_two_link_types(self, data):
        # "Person has two types of links: Aggregation links connecting
        # Person to the D-classes SS# and Name, and Generalization links
        # to Student and Teacher."
        schema = data.db.schema
        attrs = schema.descriptive_attributes("Person")
        assert set(attrs) == {"SS#", "name"}
        assert schema._subclasses["Person"] == {"Student", "Teacher"}

    def test_major_link_renamed(self, data):
        # "the link labeled Major which emanates from the class Student
        # has a different name from the class it connects to."
        link = data.db.schema.resolve_link("Student", "Department").link
        assert link.name == "Major"
        assert link.target == "Department"

    def test_sdiagram_renders(self, data):
        text = Dictionary(data.db.schema).render_sdiagram()
        assert "Person" in text and "G ->" in text


class TestFigure22_InheritedViewOfRA:
    def test_ra_inherits_along_unique_path(self, data):
        # "RA * Section is a legal expression since the class RA inherits
        # the aggregation association with Section along a unique
        # generalization path."
        resolved = data.db.schema.resolve_link("RA", "Section")
        assert resolved.link.name == "enrolled"

    def test_ra_view_explicit(self, data):
        view = data.db.schema.inherited_view("RA")
        inherited_from = {v.defined_at for v in view}
        assert {"Person", "Student", "Grad", "RA"} <= inherited_from

    def test_ta_ambiguity_requires_intermediate(self, data):
        # "the ambiguity in the expression TA * Section is resolved by
        # using either TA * Grad * Section or TA * Teacher * Section."
        universe = Universe(data.db)
        qp = QueryProcessor(universe)
        with pytest.raises(AmbiguousPathError):
            qp.execute("context TA * Section")
        via_teacher = qp.execute("context TA * Teacher * Section")
        via_grad = qp.execute("context TA * Grad * Section")
        assert len(via_teacher.subdatabase) > 0
        assert len(via_grad.subdatabase) > 0


class TestFigure31_SubdatabaseSDB:
    def test_intension(self, data):
        sdb = build_sdb(data)
        assert sdb.slot_names == ("Teacher", "Section", "Course")
        assert sdb.intension.edge_between(0, 1).label == "teaches"
        assert sdb.intension.edge_between(1, 2).label == "course"

    def test_extensional_diagram(self, data):
        sdb = build_sdb(data)
        assert sdb.labels() == {
            ("t1", "s2", "c1"), ("t2", "s3", "c1"), ("t2", "s3", "c2"),
            ("t3", "s4", None), (None, "s5", "c4"), ("t4", None, None),
            (None, None, "c3")}

    def test_five_pattern_types(self, data):
        sdb = build_sdb(data)
        assert sdb.pattern_types() == {
            PatternType(("Teacher", "Section", "Course")),
            PatternType(("Teacher", "Section")),
            PatternType(("Section", "Course")),
            PatternType(("Teacher",)),
            PatternType(("Course",))}

    def test_s3_relates_to_two_courses(self, data):
        # The deliberately waived 1:N constraint.
        sdb = build_sdb(data)
        s3_courses = {repr(p[2]) for p in sdb.patterns
                      if repr(p[1]) == "s3" and p[2] is not None}
        assert s3_courses == {"c1", "c2"}


class TestQuery31_Figure32:
    """context Teacher * Section  select name section#  display"""

    def test_applied_to_sdb(self, data, engine):
        result = engine.query(
            "context SDB:Teacher * SDB:Section select name section# "
            "display")
        assert result.subdatabase.labels() == {
            ("t1", "s2"), ("t2", "s3"), ("t3", "s4")}

    def test_t4_and_s5_dropped(self, data, engine):
        # "The extensional pattern (t4, Null) is not included in the
        # result ... similarly the pattern (s5)."
        result = engine.query("context SDB:Teacher * SDB:Section")
        flattened = {x for l in result.subdatabase.labels() for x in l}
        assert "t4" not in flattened
        assert "s5" not in flattened

    def test_binary_display_table(self, data, engine):
        result = engine.query(
            "context SDB:Teacher * SDB:Section select name section# "
            "display")
        assert len(result.table.columns) == 2
        assert result.table.rows == [("Chen", 3), ("Jones", 2),
                                     ("Smith", 1)]


class TestQuery32:
    """Departments offering 6000-level courses with current sections."""

    def test_result(self, data, engine):
        result = engine.query(
            "context Department * Course [c# >= 6000 and c# < 7000] * "
            "Section select name title textbook print")
        assert set(result.table.rows) == {
            ("CIS", "Database Systems", "Ullman"),
            ("CIS", "Database Systems", "Date"),
            ("CIS", "Expert Systems", "Korth")}


class TestSection41_InducedGeneralization:
    def test_derived_class_inherits_source_associations(self, engine):
        # Suggest_offer:Course inherits the aggregation link to
        # Department from its superclass (base) Course — making
        # Department * Suggest_offer:Course legal.
        add_paper_rules(engine)
        result = engine.query("context Department * Suggest_offer:Course")
        assert result.subdatabase.labels() == {("d1", "c1")}

    def test_cross_subdatabase_expression(self, engine):
        # The SD1:A * SD2:C shape: two different derived subdatabases
        # joined through inherited base associations.
        engine.add_rule("if context Teacher * Section then SD1 (Teacher)",
                        label="SD1")
        engine.add_rule("if context Section * Course then SD2 (Section)",
                        label="SD2")
        result = engine.query("context SD1:Teacher * SD2:Section")
        # Teachers teaching a section that offers a course.
        labels = result.subdatabase.labels()
        assert ("t1", "s2") in labels
        assert ("t3", "s4") not in labels  # s4 offers no course -> not in SD2

    def test_induced_generalization_recorded(self, engine):
        add_paper_rules(engine)
        subdb = engine.derive("Suggest_offer")
        info = subdb.derived_info["Course"]
        assert info.ref == ClassRef("Course", "Suggest_offer")
        assert info.source == ClassRef("Course")

    def test_attribute_access_through_chain(self, engine):
        add_paper_rules(engine)
        result = engine.query(
            "context Suggest_offer:Course select title display")
        assert "Database Systems" in result.output


class TestRule1_Figure43:
    def test_teacher_course_over_sdb(self, engine):
        engine.add_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher, Course)", label="R1")
        subdb = engine.derive("Teacher_course")
        assert subdb.labels() == {("t1", "c1"), ("t2", "c1"),
                                  ("t2", "c2")}
        assert subdb.slot_names == ("Teacher", "Course")
        assert subdb.intension.edge_between(0, 1).kind == "derived"

    def test_attribute_subsetting_variant(self, engine):
        # "the attribute Name will not be accessible from the class
        # Teacher_course:Teacher."
        from repro.errors import UnknownAttributeError
        engine.add_rule(
            "if context SDB:Teacher * SDB:Section * SDB:Course "
            "then Teacher_course (Teacher [SS#, degree], Course)")
        engine.derive("Teacher_course")
        ok = engine.query(
            "context Teacher_course:Teacher select Teacher_course:Teacher[SS#]")
        assert len(ok.table) == 2
        with pytest.raises(UnknownAttributeError):
            engine.query("context Teacher_course:Teacher "
                         "select Teacher_course:Teacher[name]")


class TestRule2_SuggestOffer:
    def test_only_course_with_more_than_39_students(self, engine):
        add_paper_rules(engine)
        subdb = engine.derive("Suggest_offer")
        assert subdb.labels() == {("c1",)}

    def test_closure_property_result_queryable(self, engine):
        add_paper_rules(engine)
        result = engine.query(
            "context Suggest_offer:Course select title c# display")
        assert result.table.rows == [("Database Systems", 6100)]


class TestRule3_DepsNeedRes:
    def test_paper_threshold_not_met_by_small_data(self, engine):
        # With the paper's verbatim "> 20" and one suggested course,
        # no department qualifies.
        add_paper_rules(engine)
        subdb = engine.derive("Deps_need_res")
        assert len(subdb) == 0

    def test_adapted_threshold(self, engine):
        add_paper_rules(engine)
        engine.add_rule(
            "if context Department * Suggest_offer:Course "
            "where COUNT(Suggest_offer:Course by Department) > 0 "
            "then Needy (Department)", label="R3'")
        subdb = engine.derive("Needy")
        assert subdb.labels() == {("d1",)}


class TestRules45_MayTeachUnion:
    def test_union_of_two_rules(self, engine):
        add_paper_rules(engine)
        subdb = engine.derive("May_teach")
        assert set(subdb.slot_names) == {"TA", "Course", "Grad"}
        ta = subdb.intension.index_of("TA")
        course = subdb.intension.index_of("Course")
        grad = subdb.intension.index_of("Grad")
        via_r4 = {(repr(p[ta]), repr(p[course])) for p in subdb.patterns
                  if p[ta] is not None}
        via_r5 = {(repr(p[grad]), repr(p[course])) for p in subdb.patterns
                  if p[grad] is not None}
        assert via_r4 == {("ta1", "c1"), ("ta2", "c1")}
        assert via_r5 == {("g1", "c2"), ("ta1", "c2"), ("ta2", "c2"),
                          ("g1", "c3")}


class TestQuery41_BackwardChaining:
    def test_result(self, engine):
        add_paper_rules(engine)
        result = engine.query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] "
            "select TA[name] Faculty[name] display")
        assert result.table.rows == [("Quinn", "Su")]

    def test_trigger_order(self, engine):
        # "rules R4 and R5 will be triggered ... this causes rule R2
        # that derives Suggest_offer to be triggered."
        add_paper_rules(engine)
        engine.query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] "
            "select TA[name] display")
        assert engine.stats.derivations["Suggest_offer"] == 1
        assert engine.stats.derivations["May_teach"] == 1
        assert engine.stats.derivations.get("Teacher_course", 0) == 0

    def test_gpa_filter_excludes_high_gpa_ta(self, engine):
        add_paper_rules(engine)
        result = engine.query(
            "context Faculty * Advising * May_teach:TA [GPA < 3.5] "
            "select TA[name] display")
        assert all(row != ("Reyes",) for row in result.table.rows)


class TestSection51_BracesOuterjoin:
    def test_query_51(self, engine):
        # Display the SS#'s of all grads, with advisor names or Null.
        result = engine.query(
            "context {{Grad} * Advising} * Faculty "
            "select Grad[SS#] Faculty[name] display")
        rows = dict(result.table.rows)
        assert rows["300-00-0003"] == "Su"      # ta1 advised by f1
        assert rows["300-00-0001"] == "Lam"     # g1 advised by f2
        assert rows["300-00-0002"] is None      # g2: no advisor -> Null


class TestSection52_TransitiveClosure:
    def test_prereq_closure(self, engine):
        result = engine.query("context Course * Course_1 ^*")
        assert result.subdatabase.labels() == {
            ("c4", "c1", "c2"), ("c1", "c2", None)}

    def test_rule_r6_grad_teaching_grad(self, engine):
        engine.add_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then Grad_teaching_grad (Grad, Grad_)", label="R6")
        subdb = engine.derive("Grad_teaching_grad")
        # Run-time determined intension.
        assert subdb.slot_names == ("Grad", "Grad_1", "Grad_2")
        assert ("ta1", "ta2", "g1") in subdb.labels()
        assert ("ta1", "g2", None) in subdb.labels()

    def test_rule_r7_first_and_third(self, engine):
        engine.add_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then First_and_third (Grad, Grad_2)", label="R7")
        subdb = engine.derive("First_and_third")
        assert ("ta1", "g1") in subdb.labels()

    def test_acyclicity_assumption_enforced(self, engine, data):
        # "It is assumed here that the relationship between the
        # instances of the class Grad is not cyclic."
        from repro.errors import CyclicDataError
        # Make it cyclic: ta1 teaches ta2 (via s6) and ta2 teaches ta1
        # (via s4).
        data.db.associate(data["ta2"], "teaches", data["s4"])
        data.db.associate(data["ta1"], "enrolled", data["s4"])
        with pytest.raises(CyclicDataError):
            engine.query("context Grad * TA * Teacher * Section * "
                         "Student * Grad_1 ^*")


class TestSection6_ControlStrategies:
    def test_rule_oriented_staleness_window(self, data):
        engine = RuleEngine(data.db, controller="rule")
        engine.add_rule("if context Teacher * Section then REa "
                        "(Teacher, Section)", label="Ra",
                        mode=RuleChainingMode.BACKWARD)
        engine.add_rule("if context REa:Teacher * REa:Section then REb "
                        "(Teacher)", label="Rb",
                        mode=RuleChainingMode.BACKWARD)
        engine.add_rule("if context REb:Teacher then REd (Teacher)",
                        label="Rd", mode=RuleChainingMode.FORWARD)
        engine.query("context REd:Teacher select name")
        with data.db.batch():
            t = data.db.insert("Teacher", name="Fresh", **{"SS#": "0"})
            data.db.associate(t, "teaches", data["s4"])
        assert engine.is_stale("REd")
        served = engine.query("context REd:Teacher select name display")
        assert "Fresh" not in served.output  # the POSTGRES flaw

    def test_result_oriented_fixes_it(self, data):
        engine = RuleEngine(data.db, controller="result")
        engine.add_rule("if context Teacher * Section then REa "
                        "(Teacher, Section)", label="Ra",
                        mode=EvaluationMode.POST_EVALUATED)
        engine.add_rule("if context REa:Teacher * REa:Section then REb "
                        "(Teacher)", label="Rb",
                        mode=EvaluationMode.POST_EVALUATED)
        engine.add_rule("if context REb:Teacher then REd (Teacher)",
                        label="Rd", mode=EvaluationMode.PRE_EVALUATED)
        engine.refresh()
        with data.db.batch():
            t = data.db.insert("Teacher", name="Fresh", **{"SS#": "0"})
            data.db.associate(t, "teaches", data["s4"])
        assert not engine.is_stale("REd")
        served = engine.query("context REd:Teacher select name display")
        assert "Fresh" in served.output
