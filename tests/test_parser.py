"""Unit tests for the OQL parser."""

import pytest

from repro.errors import OQLSyntaxError
from repro.oql.ast import (
    AggComparison,
    AttrRef,
    BoolOp,
    Chain,
    ClassTerm,
    Comparison,
    Literal,
    NotOp,
    SelectItem,
)
from repro.oql.parser import parse_expression, parse_query
from repro.subdb.refs import ClassRef


class TestExpressions:
    def test_single_class(self):
        expr = parse_expression("Teacher")
        assert len(expr.chain.elements) == 1
        assert expr.chain.elements[0].ref == ClassRef("Teacher")

    def test_linear_chain(self):
        expr = parse_expression("Teacher * Section * Course")
        assert expr.chain.ops == ("*", "*")
        names = [e.ref.cls for e in expr.chain.elements]
        assert names == ["Teacher", "Section", "Course"]

    def test_non_association_operator(self):
        expr = parse_expression("Teacher ! Section")
        assert expr.chain.ops == ("!",)

    def test_qualified_class(self):
        expr = parse_expression("Department * Suggest_offer:Course")
        ref = expr.chain.elements[1].ref
        assert (ref.cls, ref.subdb) == ("Course", "Suggest_offer")

    def test_alias(self):
        expr = parse_expression("Course * Course_1")
        assert expr.chain.elements[1].ref.alias == 1

    def test_braces(self):
        expr = parse_expression("A * {B * C} * D")
        inner = expr.chain.elements[1]
        assert isinstance(inner, Chain) and inner.braced
        assert [e.ref.cls for e in inner.elements] == ["B", "C"]

    def test_nested_braces(self):
        expr = parse_expression("{{{A} * B} * C} * D")
        level1 = expr.chain.elements[0]
        level2 = level1.elements[0]
        level3 = level2.elements[0]
        assert level3.braced and level3.elements[0].ref.cls == "A"

    def test_unbalanced_brace(self):
        with pytest.raises(OQLSyntaxError):
            parse_expression("{A * B")

    def test_intra_class_condition(self):
        expr = parse_expression("Course [c# >= 6000 and c# < 7000]")
        cond = expr.chain.elements[0].condition
        assert isinstance(cond, BoolOp) and cond.op == "and"
        first = cond.items[0]
        assert first == Comparison(AttrRef("c#"), ">=", Literal(6000))

    def test_condition_or_not_parens(self):
        expr = parse_expression(
            "Course [not (c# = 1 or c# = 2) and title != 'x']")
        cond = expr.chain.elements[0].condition
        assert isinstance(cond, BoolOp) and cond.op == "and"
        assert isinstance(cond.items[0], NotOp)

    def test_condition_string_and_null_literals(self):
        expr = parse_expression("Department [name = 'CIS']")
        cond = expr.chain.elements[0].condition
        assert cond.right == Literal("CIS")
        expr2 = parse_expression("Course [title = null]")
        assert expr2.chain.elements[0].condition.right == Literal(None)

    def test_loop_unbounded(self):
        expr = parse_expression("A * B * A_1 ^*")
        assert expr.loop is not None and expr.loop.count is None

    def test_loop_bounded(self):
        expr = parse_expression("A * B * A_1 ^3")
        assert expr.loop.count == 3

    def test_loop_count_must_be_positive_int(self):
        with pytest.raises(OQLSyntaxError):
            parse_expression("A * A_1 ^0")
        with pytest.raises(OQLSyntaxError):
            parse_expression("A * A_1 ^1.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OQLSyntaxError):
            parse_expression("A * B extra")


class TestQueries:
    def test_context_only(self):
        query = parse_query("context Teacher * Section")
        assert query.where == ()
        assert query.select is None
        assert query.operation is None

    def test_display_operation(self):
        query = parse_query("context Teacher * Section display")
        assert query.operation == "display"

    def test_print_operation(self):
        assert parse_query("context A print").operation == "print"
        # ('A' alone parses as a one-class chain)

    def test_user_operation_needs_parens(self):
        query = parse_query("context Teacher rotate()")
        assert query.operation == "rotate"

    def test_select_bare_attributes(self):
        query = parse_query("context Teacher * Section "
                            "select name section# display")
        assert query.select == (SelectItem(None, ("name",)),
                                SelectItem(None, ("section#",)))

    def test_select_class_with_attrs(self):
        query = parse_query("context Faculty * Advising * TA "
                            "select TA[name] Faculty[name] display")
        assert query.select[0] == SelectItem(ClassRef("TA"), ("name",))

    def test_select_dot_form(self):
        query = parse_query("context Teacher select Teacher.name")
        assert query.select[0] == SelectItem(ClassRef("Teacher"),
                                             ("name",))

    def test_select_qualified_class(self):
        query = parse_query("context May_teach:TA select May_teach:TA")
        assert query.select[0].ref == ClassRef("TA", "May_teach")
        assert query.select[0].attrs is None

    def test_select_multiple_attrs_in_brackets(self):
        query = parse_query("context Teacher select Teacher[name, degree]")
        assert query.select[0].attrs == ("name", "degree")

    def test_select_commas_optional(self):
        with_commas = parse_query("context A * B select x, y")
        without = parse_query("context A * B select x y")
        assert with_commas.select == without.select

    def test_empty_select_rejected(self):
        with pytest.raises(OQLSyntaxError):
            parse_query("context Teacher select display")

    def test_where_interclass_comparison(self):
        query = parse_query(
            "context A * B where A.x > B.y select x")
        cond = query.where[0]
        assert cond.left == AttrRef("x", ClassRef("A"))
        assert cond.right == AttrRef("y", ClassRef("B"))

    def test_where_bracket_qualification(self):
        query = parse_query("context A * B where A[x] = 3")
        assert query.where[0].left == AttrRef("x", ClassRef("A"))

    def test_where_unqualified_attr_rejected(self):
        with pytest.raises(OQLSyntaxError):
            parse_query("context A * B where x > 3")

    def test_where_count_with_parens(self):
        query = parse_query(
            "context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39")
        agg = query.where[0]
        assert isinstance(agg, AggComparison)
        assert agg.func == "count"
        assert agg.target == ClassRef("Student")
        assert agg.by == ClassRef("Course")
        assert (agg.op, agg.value) == (">", Literal(39))

    def test_where_count_without_parens(self):
        query = parse_query("context A * B where COUNT A by B >= 2")
        assert query.where[0].func == "count"

    def test_where_agg_with_attribute(self):
        query = parse_query(
            "context Department * Course "
            "where AVG(Course.credit_hours by Department) > 3")
        agg = query.where[0]
        assert (agg.func, agg.attr) == ("avg", "credit_hours")

    def test_where_agg_qualified_target(self):
        query = parse_query(
            "context Department * Suggest_offer:Course "
            "where COUNT(Suggest_offer:Course by Department) > 20")
        assert query.where[0].target == ClassRef("Course", "Suggest_offer")

    def test_multiple_where_conditions(self):
        query = parse_query(
            "context A * B where A.x > 1 and COUNT(A by B) > 2")
        assert len(query.where) == 2

    def test_where_and_select_in_either_order(self):
        a = parse_query("context A * B where A.x = 1 select y display")
        b = parse_query("context A * B select y where A.x = 1 display")
        assert a.where == b.where and a.select == b.select

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OQLSyntaxError):
            parse_query("context A * B display extra")

    def test_missing_context_keyword(self):
        with pytest.raises(OQLSyntaxError):
            parse_query("Teacher * Section display")

    def test_str_roundtrip_parses(self):
        text = ("context Department[name = 'CIS'] * Course * Section * "
                "Student where COUNT(Student by Course) > 39 "
                "select name display")
        query = parse_query(text)
        again = parse_query(str(query))
        assert again.where == query.where
        assert again.select == query.select


class TestWhereBooleanGroups:
    def test_parenthesized_or(self):
        query = parse_query(
            "context A * B where (A.x = 1 or B.y = 2)")
        cond = query.where[0]
        assert isinstance(cond, BoolOp) and cond.op == "or"

    def test_group_and_binds_locally(self):
        query = parse_query(
            "context A * B where (A.x = 1 and B.y = 2 or A.x = 3)")
        cond = query.where[0]
        assert isinstance(cond, BoolOp) and cond.op == "or"
        assert isinstance(cond.items[0], BoolOp)
        assert cond.items[0].op == "and"

    def test_group_followed_by_agg_condition(self):
        query = parse_query(
            "context A * B where (A.x = 1 or A.x = 2) "
            "and COUNT(A by B) > 3")
        assert len(query.where) == 2
        assert isinstance(query.where[1], AggComparison)

    def test_not_group(self):
        query = parse_query("context A * B where not (A.x = B.y)")
        assert isinstance(query.where[0], NotOp)

    def test_nested_groups(self):
        query = parse_query(
            "context A * B where ((A.x = 1 or A.x = 2) and B.y > 0)")
        cond = query.where[0]
        assert isinstance(cond, BoolOp) and cond.op == "and"

    def test_semantics_end_to_end(self):
        from repro.oql.evaluator import PatternEvaluator
        from repro.subdb import Universe
        from repro.university import build_paper_database
        data = build_paper_database()
        query = parse_query(
            "context Teacher * Section "
            "where (Teacher.degree = 'MS' or Section.section# = 1)")
        result = PatternEvaluator(Universe(data.db)).evaluate(
            query.context, query.where)
        labels = result.labels()
        assert ("t3", "s4") in labels   # MS teacher
        assert ("t1", "s2") in labels   # section# 1
        assert ("t2", "s3") not in labels
