"""Unit tests for extensional patterns, pattern types, and the
subsumption rule of Section 5.1."""

import pytest

from repro.model.oid import OID
from repro.subdb.pattern import (
    ExtensionalPattern,
    PatternType,
    covers,
    subsume,
)


def P(*values):
    return ExtensionalPattern([None if v is None else OID(v)
                               for v in values])


class TestExtensionalPattern:
    def test_equality_and_hash(self):
        assert P(1, 2) == P(1, 2)
        assert P(1, 2) != P(2, 1)
        assert len({P(1, 2), P(1, 2), P(1, None)}) == 2

    def test_non_null_indices(self):
        assert P(1, None, 3).non_null_indices == (0, 2)

    def test_arity(self):
        assert P(None, None).arity == 0
        assert P(1, None, 3).arity == 2

    def test_type_of(self):
        ptype = P(1, None, 3).type_of(("A", "B", "C"))
        assert ptype == PatternType(("A", "C"))

    def test_project(self):
        assert P(1, 2, 3).project([2, 0]) == P(3, 1)

    def test_pad_realigns(self):
        padded = P(1, 2).pad([2, 0], 4)
        assert padded == P(2, None, 1, None)

    def test_key_skips_nulls(self):
        assert P(1, None, 3).key() == ((0, 1), (2, 3))

    def test_repr_renders_nulls(self):
        assert "Null" in repr(P(1, None))


class TestPatternType:
    def test_equality(self):
        assert PatternType(["A", "B"]) == PatternType(("A", "B"))
        assert PatternType(["A"]) != PatternType(["B"])

    def test_iteration_and_len(self):
        ptype = PatternType(("A", "B"))
        assert list(ptype) == ["A", "B"]
        assert len(ptype) == 2


class TestCovers:
    def test_strict_superset_with_agreement(self):
        assert covers(P(1, 2, 3), P(1, 2, None))
        assert covers(P(1, 2, 3), P(None, 2, None))

    def test_disagreement_is_not_covering(self):
        assert not covers(P(1, 2, 3), P(1, 9, None))

    def test_equal_arity_is_not_covering(self):
        assert not covers(P(1, 2, None), P(1, None, 2))
        assert not covers(P(1, 2), P(1, 2))

    def test_smaller_never_covers_larger(self):
        assert not covers(P(1, None, None), P(1, 2, None))


class TestSubsume:
    def test_paper_example_section_5_1(self):
        # From {(a1,b5,c5,d5), (a3,b2,c2 with no d)}: A*{B*C}*D returns
        # (a1,b5,c5,d5) and (b2,c2); (b5,c5) is dropped because it is
        # part of the larger retained pattern.
        full = P(1, 5, 55, 555)
        part_kept = P(None, 2, 22, None)
        part_dropped = P(None, 5, 55, None)
        result = subsume({full, part_kept, part_dropped})
        assert result == {full, part_kept}

    def test_chain_of_nesting(self):
        # Transitivity: (a) < (a,b) < (a,b,c); only the largest stays.
        result = subsume({P(1, None, None), P(1, 2, None), P(1, 2, 3)})
        assert result == {P(1, 2, 3)}

    def test_middle_dropped_even_when_largest_drops_it_first(self):
        # (a,b) is covered by (a,b,c); (a) is covered by both.
        result = subsume({P(1, 2, 3), P(1, 2, None), P(1, None, None),
                          P(9, None, None)})
        assert result == {P(1, 2, 3), P(9, None, None)}

    def test_no_false_positives_on_disjoint(self):
        patterns = {P(1, 2, None), P(None, 3, 4)}
        assert subsume(patterns) == patterns

    def test_same_value_different_slots_not_subsumed(self):
        patterns = {P(1, 2, None), P(None, 1, 2)}
        assert subsume(patterns) == patterns

    def test_empty_input(self):
        assert subsume([]) == set()

    def test_idempotent(self):
        patterns = {P(1, 2, 3), P(1, 2, None), P(4, None, None)}
        once = subsume(patterns)
        assert subsume(once) == once
