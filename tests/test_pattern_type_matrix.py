"""Table-driven brace semantics: which extensional pattern types does
each expression shape identify, and which patterns survive subsumption —
over a fully connected and a partially connected ABCD world."""

import pytest

from repro.model.database import Database
from repro.model.dclass import STRING
from repro.model.schema import Schema
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression
from repro.subdb.universe import Universe


def build_world(connect_d: bool):
    """a-b-c linearly connected; d connected only when ``connect_d``."""
    schema = Schema("abcd")
    for name in "ABCD":
        schema.add_eclass(name)
        schema.add_attribute(name, "tag", STRING)
    schema.add_association("A", "B")
    schema.add_association("B", "C")
    schema.add_association("C", "D")
    db = Database(schema)
    objs = {c: db.insert(c, c.lower(), tag=c.lower()) for c in "ABCD"}
    db.associate(objs["A"], "B", objs["B"])
    db.associate(objs["B"], "C", objs["C"])
    if connect_d:
        db.associate(objs["C"], "D", objs["D"])
    return Universe(db)


def types_of(universe, text):
    subdb = PatternEvaluator(universe).evaluate(parse_expression(text))
    return {tuple(t.slots) for t in subdb.pattern_types()}


FULLY_CONNECTED = [
    # (expression, expected pattern types when a-b-c-d all connected)
    ("A * B * C * D", {("A", "B", "C", "D")}),
    ("A * {B * C} * D", {("A", "B", "C", "D")}),
    ("{A * B} * {C * D}", {("A", "B", "C", "D")}),
    ("{{{A} * B} * C} * D", {("A", "B", "C", "D")}),
    ("{A} * {B} * {C} * {D}", {("A", "B", "C", "D")}),
]

D_DISCONNECTED = [
    # (expression, expected types when c-d is NOT linked)
    ("A * B * C * D", set()),
    ("A * {B * C} * D", {("B", "C")}),
    ("{A * B} * {C * D}", {("A", "B")}),     # c-d brace has no pairs
    ("{{{A} * B} * C} * D", {("A", "B", "C")}),
    ("{A} * {B} * {C} * {D}", {("A",), ("B",), ("C",), ("D",)}),
    ("{A * B * C} * D", {("A", "B", "C")}),
]


class TestFullyConnected:
    """With a complete chain, subsumption collapses every brace type
    into the full pattern."""

    @pytest.mark.parametrize("text,expected", FULLY_CONNECTED)
    def test_types(self, text, expected):
        universe = build_world(connect_d=True)
        assert types_of(universe, text) == expected


class TestPartiallyConnected:
    """With c-d missing, only the brace groups that still match
    independently survive."""

    @pytest.mark.parametrize("text,expected", D_DISCONNECTED)
    def test_types(self, text, expected):
        universe = build_world(connect_d=False)
        assert types_of(universe, text) == expected

    def test_full_rows_require_full_connectivity(self):
        universe = build_world(connect_d=False)
        subdb = PatternEvaluator(universe).evaluate(
            parse_expression("A * B * C * D"))
        assert len(subdb) == 0

    def test_non_association_reaches_d(self):
        # C ! D: c is NOT linked to d, so the complement pair matches.
        universe = build_world(connect_d=False)
        subdb = PatternEvaluator(universe).evaluate(
            parse_expression("A * B * C ! D"))
        assert len(subdb) == 1
