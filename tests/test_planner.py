"""Tests for the cost-based join planner: statistics caching, plan
shapes, cost-model invariants, result equivalence across all three
strategies on the paper's rules and queries, and the EXPLAIN
ANALYZE-style plan/metrics surface."""

import pytest

from repro.model.database import Database
from repro.model.dclass import INTEGER
from repro.model.schema import Schema
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression, parse_query
from repro.oql.planner import OPTIMIZE_MODES, Planner, Statistics
from repro.rules.engine import RuleEngine
from repro.subdb.universe import Universe
from repro.university import GeneratorConfig, build_paper_database, \
    generate_university


def chain_universe():
    """A -ab-> B -bc-> C with skewed extent sizes (2, 6, 4)."""
    schema = Schema()
    for cls in "ABC":
        schema.add_eclass(cls)
        schema.add_attribute(cls, "n", INTEGER)
    schema.add_association("A", "B", name="ab")
    schema.add_association("B", "C", name="bc")
    db = Database(schema)
    objs = {}
    for cls, count in (("A", 2), ("B", 6), ("C", 4)):
        for i in range(count):
            objs[f"{cls.lower()}{i}"] = db.insert(
                cls, f"{cls.lower()}{i}", n=i)
    for i in range(2):
        db.associate(objs[f"a{i}"], "ab", objs[f"b{i}"])
    for i in range(4):
        db.associate(objs[f"b{i}"], "bc", objs[f"c{i}"])
    return Universe(db), db, objs


class TestStatistics:
    def test_extent_sizes_match_universe(self):
        universe, db, _ = chain_universe()
        stats = Statistics(universe)
        for text in ("A", "B", "C"):
            ref = parse_expression(text).chain.elements[0].ref
            assert stats.extent_size(ref) == len(universe.extent(ref))

    def test_fanout_is_pairs_over_source_extent(self):
        universe, db, _ = chain_universe()
        stats = Statistics(universe)
        a = parse_expression("A").chain.elements[0].ref
        b = parse_expression("B").chain.elements[0].ref
        resolution = universe.resolve_edge(a, b)
        assert stats.fanout(a, resolution) == pytest.approx(2 / 2)
        assert stats.fanout(b, resolution) == pytest.approx(2 / 6)

    def test_cache_invalidated_by_data_change(self):
        universe, db, objs = chain_universe()
        stats = Statistics(universe)
        a = parse_expression("A").chain.elements[0].ref
        assert stats.extent_size(a) == 2
        db.insert("A", "a_extra", n=9)
        assert stats.extent_size(a) == 3

    def test_cache_invalidated_by_subdb_registration(self):
        universe, db, _ = chain_universe()
        before = universe.data_version
        result = PatternEvaluator(universe).evaluate(
            parse_expression("A * B"), name="AB")
        universe.register(result)
        assert universe.data_version > before
        universe.unregister("AB")
        assert universe.data_version > before + 1

    def test_derived_extent_sizes(self):
        universe, db, _ = chain_universe()
        result = PatternEvaluator(universe).evaluate(
            parse_expression("A * B"), name="AB")
        universe.register(result)
        stats = Statistics(universe)
        ref = parse_query("context AB:A display").context \
            .chain.elements[0].ref
        assert stats.extent_size(ref) == len(universe.extent(ref))


class TestPlanShapes:
    def _plan(self, universe, text, strategy):
        evaluator = PatternEvaluator(universe, optimize=strategy)
        evaluator.evaluate(parse_expression(text))
        plans = evaluator.last_metrics.plans
        assert plans, "evaluation recorded no plan"
        return plans[0]

    def test_naive_goes_left_to_right(self):
        universe, _, _ = chain_universe()
        plan = self._plan(universe, "A * B * C", "naive")
        assert plan.anchor == 0
        assert [s.direction for s in plan.steps] == ["right", "right"]
        assert plan.order() == [0, 1, 2]

    def test_cost_anchors_at_selective_filter(self):
        data = generate_university(GeneratorConfig(
            students=200, courses=20, seed=7))
        universe = Universe(data.db)
        plan = self._plan(universe,
                          "Student * Section * Course [c# = 1000]",
                          "cost")
        assert plan.slot_names[plan.anchor] == "Course"

    def test_order_is_contiguous(self):
        data = build_paper_database()
        universe = Universe(data.db)
        for strategy in OPTIMIZE_MODES:
            plan = self._plan(
                universe, "Department * Course * Section * Student",
                strategy)
            order = plan.order()
            assert sorted(order) == [0, 1, 2, 3]
            lo = hi = plan.anchor
            for slot in order[1:]:
                assert slot in (lo - 1, hi + 1), \
                    f"{strategy} produced a non-contiguous order {order}"
                lo, hi = min(lo, slot), max(hi, slot)

    def test_cost_never_worse_than_other_strategies(self):
        """The DP searches every contiguous order, so its modeled cost
        is a lower bound on the naive and greedy orders' costs."""
        data = generate_university(GeneratorConfig(seed=13))
        universe = Universe(data.db)
        for text in ("Student * Section * Course [c# = 1000]",
                     "Department * Course * Section * Student",
                     "Teacher * Section ! Course"):
            costs = {strategy: self._plan(universe, text, strategy)
                     .est_cost for strategy in OPTIMIZE_MODES}
            assert costs["cost"] <= costs["naive"] + 1e-9
            assert costs["cost"] <= costs["greedy"] + 1e-9

    def test_unknown_strategy_rejected(self):
        universe, _, _ = chain_universe()
        with pytest.raises(ValueError, match="unknown planning strategy"):
            Planner(universe).plan([], [], [], [], 0, 0,
                                   strategy="bogus")
        with pytest.raises(ValueError, match="optimize must be"):
            PatternEvaluator(universe, optimize="fastest")

    def test_bool_aliases(self):
        universe, _, _ = chain_universe()
        assert PatternEvaluator(universe, optimize=True).optimize == \
            "cost"
        assert PatternEvaluator(universe, optimize=False).optimize == \
            "naive"


# The paper's rule contexts (R1-R5 verbatim from Section 2/4, R6-R7 the
# loop rules of Section 5.2, R8 the non-association example of
# Section 3.2), evaluated under every strategy.
PAPER_CONTEXTS = [
    ("R1", "context Teacher * Section * Course display"),
    ("R2", "context Department[name = 'CIS'] * Course * Section * "
           "Student where COUNT(Student by Course) > 39 display"),
    ("R3", "context Department * Suggest_offer:Course display"),
    ("R4", "context TA * Teacher * Section * Suggest_offer:Course "
           "display"),
    ("R5", "context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
           "display"),
    ("R6", "context Grad * TA * Teacher * Section * Student * Grad_1 ^* "
           "display"),
    ("R7", "context Course * Course_1 ^* display"),
    ("R8", "context Teacher ! Section display"),
]


class TestPaperRuleEquivalence:
    @pytest.fixture(scope="class")
    def engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Department[name = 'CIS'] * Course * Section * "
            "Student where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)", label="R2")
        engine.derive("Suggest_offer")
        return engine

    @pytest.mark.parametrize("label,text",
                             PAPER_CONTEXTS,
                             ids=[label for label, _ in PAPER_CONTEXTS])
    def test_all_strategies_agree(self, engine, label, text):
        query = parse_query(text)
        results = [
            PatternEvaluator(engine.universe, optimize=mode)
            .evaluate(query.context, query.where)
            for mode in OPTIMIZE_MODES]
        assert results[0].patterns == results[1].patterns
        assert results[1].patterns == results[2].patterns


class TestPlanMetrics:
    def test_actuals_filled_in(self):
        data = build_paper_database()
        universe = Universe(data.db)
        evaluator = PatternEvaluator(universe, optimize="cost")
        evaluator.evaluate(
            parse_expression("Teacher * Section * Course"))
        (plan,) = evaluator.last_metrics.plans
        assert plan.actual_anchor_rows is not None
        for step in plan.steps:
            assert step.actual_rows is not None
            assert step.actual_frontier is not None
        assert "join plan [cost]" in \
            evaluator.last_metrics.describe_plans()
        assert "actual" in evaluator.last_metrics.describe_plans()

    def test_plans_surface_through_query_metrics(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        result = engine.query("context Teacher * Section * Course "
                              "select Teacher[name] display")
        assert result.metrics.plans
        assert result.metrics.plans[0].strategy == "cost"

    def test_one_plan_per_brace_group(self):
        data = build_paper_database()
        evaluator = PatternEvaluator(Universe(data.db))
        evaluator.evaluate(
            parse_expression("Teacher * {Section * Course} * Department"))
        assert len(evaluator.last_metrics.plans) == 2

    def test_loop_extension_counts_traversals(self):
        """Regression: level extension used to bypass the traversal and
        row counters entirely — a deep closure must cost strictly more
        than its first level."""
        data = build_paper_database()
        universe = Universe(data.db)
        one = PatternEvaluator(universe)
        one.evaluate(parse_expression("Course * Course_1 ^1"))
        full = PatternEvaluator(universe)
        full.evaluate(parse_expression("Course * Course_1 ^*"))
        assert full.last_metrics.loop_levels > 1
        assert full.last_metrics.edge_traversals > \
            one.last_metrics.edge_traversals
        assert full.last_metrics.rows_generated > \
            one.last_metrics.rows_generated
