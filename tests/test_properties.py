"""Property-based tests (hypothesis) on the core invariants:

* the subsumption rule is sound, complete and idempotent;
* pattern projection/padding round-trips;
* loop-based transitive closure agrees with the Datalog baseline's
  fixpoint on arbitrary DAGs;
* naive and semi-naive Datalog evaluation agree on arbitrary graphs;
* a pre-evaluated (forward-maintained) result always equals a
  from-scratch recomputation, whatever update sequence ran.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.datalog import (
    naive_eval,
    seminaive_eval,
    transitive_closure_program,
)
from repro.model.database import Database
from repro.model.oid import OID
from repro.model.schema import Schema
from repro.oql.evaluator import PatternEvaluator
from repro.oql.parser import parse_expression
from repro.subdb.pattern import ExtensionalPattern, covers, subsume
from repro.subdb.universe import Universe


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def patterns(width: int = 4, max_value: int = 5):
    slot = st.one_of(st.none(), st.integers(min_value=1,
                                            max_value=max_value))
    return st.lists(slot, min_size=width, max_size=width).map(
        lambda vals: ExtensionalPattern(
            [None if v is None else OID(v) for v in vals]))


pattern_sets = st.lists(patterns(), min_size=0, max_size=24).map(set)

dag_edges = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
        lambda e: e[0] < e[1]),
    min_size=0, max_size=20).map(set)

any_edges = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(
        lambda e: e[0] != e[1]),
    min_size=0, max_size=16).map(set)


# ---------------------------------------------------------------------------
# Subsumption
# ---------------------------------------------------------------------------

class TestSubsumeProperties:
    @given(pattern_sets)
    def test_sound_no_kept_pattern_is_covered(self, pats):
        kept = subsume(pats)
        for p in kept:
            assert not any(covers(q, p) for q in kept if q != p)

    @given(pattern_sets)
    def test_complete_every_dropped_pattern_is_covered(self, pats):
        kept = subsume(pats)
        for p in pats - kept:
            assert any(covers(q, p) for q in kept)

    @given(pattern_sets)
    def test_idempotent(self, pats):
        once = subsume(pats)
        assert subsume(once) == once

    @given(pattern_sets)
    def test_result_is_subset(self, pats):
        assert subsume(pats) <= pats

    @given(pattern_sets)
    def test_maximal_arity_patterns_always_kept(self, pats):
        if not pats:
            return
        top = max(p.arity for p in pats)
        kept = subsume(pats)
        for p in pats:
            if p.arity == top:
                assert p in kept

    @given(patterns(), patterns())
    def test_covers_is_antisymmetric(self, a, b):
        assert not (covers(a, b) and covers(b, a))

    @given(patterns())
    def test_covers_is_irreflexive(self, p):
        assert not covers(p, p)


class TestPatternAlgebra:
    @given(patterns(width=5))
    def test_project_then_pad_preserves_values(self, p):
        projected = p.project([0, 2, 4])
        padded = projected.pad([0, 2, 4], 5)
        for i in (0, 2, 4):
            assert padded[i] == p[i]
        for i in (1, 3):
            assert padded[i] is None

    @given(patterns())
    def test_type_arity_consistency(self, p):
        assert len(p.type_of(tuple("ABCD"))) == p.arity


# ---------------------------------------------------------------------------
# Loop TC vs the Datalog baseline
# ---------------------------------------------------------------------------

def _node_db(edges):
    schema = Schema("nodes")
    schema.add_eclass("N")
    schema.add_association("N", "N", name="next")
    db = Database(schema)
    nodes = {}
    involved = sorted({x for e in edges for x in e})
    for value in involved:
        nodes[value] = db.insert("N", f"n{value}")
    for a, b in edges:
        db.associate(nodes[a], "next", nodes[b])
    return db, nodes


def _closure_pairs(subdb):
    """(ancestor, descendant) OID-value pairs from hierarchy rows."""
    pairs = set()
    for pattern in subdb.patterns:
        chain = [v for v in pattern.values if v is not None]
        for i in range(len(chain)):
            for j in range(i + 1, len(chain)):
                pairs.add((chain[i].value, chain[j].value))
    return pairs


class TestLoopVsDatalog:
    @settings(max_examples=40, deadline=None)
    @given(dag_edges)
    def test_loop_closure_equals_datalog_fixpoint(self, edges):
        db, nodes = _node_db(edges)
        evaluator = PatternEvaluator(Universe(db))
        subdb = evaluator.evaluate(parse_expression("N * N_1 ^*"))
        oid_edges = {(nodes[a].oid.value, nodes[b].oid.value)
                     for a, b in edges}
        expected = seminaive_eval(
            transitive_closure_program(oid_edges))["tc"]
        assert _closure_pairs(subdb) == expected

    @settings(max_examples=40, deadline=None)
    @given(any_edges)
    def test_loop_with_stop_equals_datalog_on_cyclic_graphs(self, edges):
        db, nodes = _node_db(edges)
        evaluator = PatternEvaluator(Universe(db), on_cycle="stop")
        subdb = evaluator.evaluate(parse_expression("N * N_1 ^*"))
        oid_edges = {(nodes[a].oid.value, nodes[b].oid.value)
                     for a, b in edges}
        expected = seminaive_eval(
            transitive_closure_program(oid_edges))["tc"]
        # With on_cycle='stop' a hierarchy never revisits a node, so
        # self-reachability pairs (x, x) are not enumerated; everything
        # else must match.
        assert _closure_pairs(subdb) == {
            (a, b) for a, b in expected if a != b}


class TestDatalogProperties:
    @settings(max_examples=40, deadline=None)
    @given(any_edges)
    def test_naive_equals_seminaive(self, edges):
        program = transitive_closure_program(edges)
        assert naive_eval(program)["tc"] == \
            seminaive_eval(program)["tc"]

    @settings(max_examples=40, deadline=None)
    @given(dag_edges)
    def test_closure_contains_edges_and_is_transitive(self, edges):
        result = seminaive_eval(transitive_closure_program(edges))["tc"]
        assert set(edges) <= result
        for a, b in result:
            for c, d in result:
                if b == c:
                    assert (a, d) in result


# ---------------------------------------------------------------------------
# Maintenance consistency
# ---------------------------------------------------------------------------

class TestMaintenanceConsistency:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                              st.booleans()),
                    min_size=0, max_size=12))
    def test_pre_evaluated_equals_recompute(self, ops):
        """Whatever associate/dissociate sequence runs, the forward-
        maintained result equals a from-scratch derivation."""
        from repro.rules.control import EvaluationMode
        from repro.rules.engine import RuleEngine

        schema = Schema("ts")
        schema.add_eclass("T")
        schema.add_eclass("S")
        schema.add_association("T", "S", name="teaches")
        db = Database(schema)
        teachers = [db.insert("T", f"t{i}") for i in range(4)]
        sections = [db.insert("S", f"s{i}") for i in range(4)]

        engine = RuleEngine(db, controller="result")
        engine.add_rule("if context T * S then Pairs (T, S)",
                        label="P", mode=EvaluationMode.PRE_EVALUATED)
        engine.refresh()

        linked = set()
        for t_index, s_index, do_link in ops:
            key = (t_index, s_index)
            if do_link and key not in linked:
                db.associate(teachers[t_index], "teaches",
                             sections[s_index])
                linked.add(key)
            elif not do_link and key in linked:
                db.dissociate(teachers[t_index], "teaches",
                              sections[s_index])
                linked.discard(key)

        maintained = engine.universe.get_subdb("Pairs").patterns
        fresh = engine.derive("Pairs", force=True).patterns
        assert maintained == fresh
        expected = {(teachers[a].oid, sections[b].oid)
                    for a, b in linked}
        assert {(p[0], p[1]) for p in maintained} == expected
