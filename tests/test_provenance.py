"""Tests for the provenance facility (why-explanations)."""

import pytest

from repro.errors import OQLSemanticError
from repro.rules.engine import RuleEngine
from repro.rules.provenance import explain_pattern
from repro.university import build_paper_database


@pytest.fixture
def engine():
    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.add_rule(
        "if context Department[name = 'CIS'] * Course * Section * Student "
        "where COUNT(Student by Course) > 39 "
        "then Suggest_offer (Course)", label="R2")
    engine.add_rule(
        "if context TA * Teacher * Section * Suggest_offer:Course "
        "then May_teach (TA, Course)", label="R4")
    engine.add_rule(
        "if context Grad * Transcript[grade >= 3.0] * Course[c# < 5000] "
        "then May_teach (Grad, Course)", label="R5")
    engine.derive("May_teach")
    return engine


class TestWhy:
    def test_supported_pattern_names_rule_and_rows(self, engine):
        why = engine.why("May_teach", ("ta1", "c1", None))
        assert why.is_supported
        r4 = next(s for s in why.supports if s.rule_label == "R4")
        assert len(r4.rows) == 1
        assert tuple(repr(v) for v in r4.rows[0]) == \
            ("ta1", "ta1", "s3", "c1")
        r5 = next(s for s in why.supports if s.rule_label == "R5")
        assert r5.rows == []

    def test_pattern_supported_by_other_rule(self, engine):
        why = engine.why("May_teach", (None, "c2", "g1"))
        r5 = next(s for s in why.supports if s.rule_label == "R5")
        assert len(r5.rows) == 1

    def test_recursion_into_derived_source(self, engine):
        why = engine.why("May_teach", ("ta1", "c1", None))
        r4 = next(s for s in why.supports if s.rule_label == "R4")
        assert len(r4.nested) == 1
        nested = r4.nested[0]
        assert nested.target == "Suggest_offer"
        assert nested.is_supported
        assert nested.supports[0].rule_label == "R2"

    def test_depth_zero_stops_recursion(self, engine):
        why = engine.why("May_teach", ("ta1", "c1", None), depth=0)
        r4 = next(s for s in why.supports if s.rule_label == "R4")
        assert r4.nested == []

    def test_unsupported_pattern(self, engine):
        why = engine.why("May_teach", ("ta1", "c3", None))
        assert not why.is_supported
        assert "UNSUPPORTED" in why.render()

    def test_render_shape(self, engine):
        text = engine.why("May_teach", ("ta1", "c1", None)).render()
        assert "by rule R4 from (ta1, ta1, s3, c1)" in text
        assert "Suggest_offer (c1)" in text
        assert "by rule R2 from" in text

    def test_unknown_label_rejected(self, engine):
        with pytest.raises(OQLSemanticError):
            engine.why("May_teach", ("ghost", "c1", None))

    def test_wrong_arity_rejected(self, engine):
        with pytest.raises(OQLSemanticError):
            engine.why("May_teach", ("ta1",))

    def test_accepts_extensional_pattern_object(self, engine):
        subdb = engine.universe.get_subdb("May_teach")
        pattern = next(iter(subdb.patterns))
        why = explain_pattern(engine, "May_teach", pattern)
        assert why.is_supported

    def test_many_supports_counted(self, engine):
        why = engine.why("Suggest_offer", ("c1",))
        r2 = why.supports[0]
        # 46 distinct students reach c1 through two sections; each full
        # match is one support row.
        assert len(r2.rows) >= 46
        assert "more)" in why.render()


class TestShellWhy:
    def test_why_command(self, engine):
        import io
        from repro.shell import Shell
        out = io.StringIO()
        shell = Shell(engine, out=out)
        shell.handle("\\why May_teach ta1 c1 -")
        assert "by rule R4" in out.getvalue()

    def test_why_usage(self, engine):
        import io
        from repro.shell import Shell
        out = io.StringIO()
        shell = Shell(engine, out=out)
        shell.handle("\\why May_teach")
        assert "usage" in out.getvalue()
