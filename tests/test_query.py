"""Unit tests for the query-processing façade."""

import pytest

from repro.oql.operations import OperationRegistry
from repro.oql.query import QueryProcessor
from repro.subdb.universe import Universe
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def qp():
    data = build_paper_database()
    universe = Universe(data.db)
    universe.register(build_sdb(data))
    return QueryProcessor(universe)


class TestExecute:
    def test_returns_subdatabase_always(self, qp):
        result = qp.execute("context Teacher * Section")
        assert result.subdatabase is not None
        assert result.table is None
        assert result.output is None

    def test_display_produces_output(self, qp):
        result = qp.execute("context SDB:Teacher * SDB:Section "
                            "select name section# display")
        assert "Smith" in result.output
        assert result.render() == result.output

    def test_print_behaves_like_display(self, qp):
        result = qp.execute("context SDB:Teacher select name print")
        assert "Silva" in result.output

    def test_select_without_operation_builds_table(self, qp):
        result = qp.execute("context SDB:Teacher select name")
        assert result.table is not None
        assert result.output is None

    def test_render_without_table_describes_subdb(self, qp):
        result = qp.execute("context Teacher * Section")
        assert "classes: Teacher, Section" in result.render()

    def test_result_names_are_unique(self, qp):
        a = qp.execute("context Teacher")
        b = qp.execute("context Teacher")
        assert a.subdatabase.name != b.subdatabase.name

    def test_explicit_name(self, qp):
        result = qp.execute("context Teacher", name="mine")
        assert result.subdatabase.name == "mine"

    def test_accepts_preparsed_query(self, qp):
        from repro.oql.parser import parse_query
        query = parse_query("context Teacher * Section display")
        result = qp.execute(query)
        assert result.output is not None


class TestUserOperations:
    def test_user_operation_invoked_with_table(self):
        data = build_paper_database()
        universe = Universe(data.db)
        registry = OperationRegistry()
        seen = {}

        def audit(univ, subdb, table):
            seen["rows"] = len(table)
            return "audited"

        registry.register("audit", audit)
        qp = QueryProcessor(universe, operations=registry)
        result = qp.execute("context Teacher * Section "
                            "select Teacher[name] audit()")
        assert result.op_result == "audited"
        assert seen["rows"] > 0

    def test_unknown_user_operation(self, qp):
        from repro.errors import OQLSemanticError
        with pytest.raises(OQLSemanticError):
            qp.execute("context Teacher rotate()")


class TestMetrics:
    def test_metrics_attached(self, qp):
        result = qp.execute("context Teacher * Section * Course")
        assert result.metrics is not None
        snapshot = result.metrics.snapshot()
        assert snapshot["patterns_out"] == len(result.subdatabase)
        assert snapshot["edge_traversals"] > 0
        assert snapshot["extent_objects"] > 0

    def test_loop_levels_recorded(self, qp):
        result = qp.execute("context Course * Course_1 ^*")
        assert result.metrics.loop_levels == 2

    def test_subsumption_counted(self, qp):
        result = qp.execute("context {{Grad} * Advising} * Faculty")
        assert result.metrics.patterns_subsumed > 0

    def test_optimizer_traverses_fewer_edges_on_selective_query(self):
        from repro.oql.evaluator import PatternEvaluator
        from repro.oql.parser import parse_expression
        from repro.subdb import Universe
        from repro.university import GeneratorConfig, generate_university
        data = generate_university(GeneratorConfig(students=200, seed=3))
        expr = parse_expression("Student * Section * Course [c# = 1000]")
        fast = PatternEvaluator(Universe(data.db), optimize=True)
        slow = PatternEvaluator(Universe(data.db), optimize=False)
        fast.evaluate(expr)
        slow.evaluate(expr)
        assert fast.last_metrics.edge_traversals < \
            slow.last_metrics.edge_traversals
