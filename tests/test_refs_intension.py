"""Unit tests for class references and intensional patterns."""

import pytest

from repro.errors import OQLSemanticError
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.refs import ClassRef


class TestClassRefParse:
    def test_plain(self):
        ref = ClassRef.parse("Teacher")
        assert (ref.cls, ref.subdb, ref.alias) == ("Teacher", None, None)

    def test_qualified(self):
        ref = ClassRef.parse("Suggest_offer:Course")
        assert (ref.cls, ref.subdb) == ("Course", "Suggest_offer")

    def test_alias(self):
        ref = ClassRef.parse("Grad_2")
        assert (ref.cls, ref.alias) == ("Grad", 2)

    def test_qualified_alias(self):
        ref = ClassRef.parse("SD1:A_3")
        assert (ref.cls, ref.subdb, ref.alias) == ("A", "SD1", 3)

    def test_underscored_name_without_digits_is_not_alias(self):
        ref = ClassRef.parse("May_teach")
        assert ref.cls == "May_teach"
        assert ref.alias is None

    def test_name_with_digit_suffix_inside_word(self):
        # Only an *underscore*-digit suffix is an alias.
        assert ClassRef.parse("Grad2").cls == "Grad2"

    def test_slot_roundtrip(self):
        for text in ["Teacher", "SD:A", "A_1", "SD:A_2"]:
            assert ClassRef.parse(text).slot == text

    def test_level(self):
        assert ClassRef.parse("A").level == 0
        assert ClassRef.parse("A_4").level == 4

    def test_with_and_without_alias(self):
        ref = ClassRef("A", "SD", 1)
        assert ref.without_alias().slot == "SD:A"
        assert ref.with_alias(3).slot == "SD:A_3"

    def test_ordering_is_total(self):
        refs = [ClassRef("B"), ClassRef("A"), ClassRef("A", "S")]
        assert sorted(refs)  # no TypeError


class TestIntensionalPattern:
    def test_slot_names(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B", "SD")])
        assert ip.slot_names == ("A", "SD:B")

    def test_duplicate_slots_rejected_with_hint(self):
        with pytest.raises(OQLSemanticError) as err:
            IntensionalPattern([ClassRef("A"), ClassRef("A")])
        assert "alias" in str(err.value)

    def test_aliases_make_slots_distinct(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("A", None, 1)])
        assert len(ip) == 2

    def test_index_of(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        assert ip.index_of("B") == 1
        assert ip.index_of(ClassRef("A")) == 0

    def test_index_of_missing(self):
        ip = IntensionalPattern([ClassRef("A")])
        with pytest.raises(OQLSemanticError):
            ip.index_of("Z")

    def test_indices_and_levels_of_class(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B"),
                                 ClassRef("A", None, 2),
                                 ClassRef("A", None, 1)])
        assert ip.indices_of_class("A") == [0, 2, 3]
        assert ip.levels_of_class("A") == [0, 3, 2]

    def test_edge_between(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")],
                                [Edge(0, 1, "base", "x")])
        assert ip.edge_between(0, 1).label == "x"
        assert ip.edge_between(1, 0).label == "x"

    def test_with_edges(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        extended = ip.with_edges([Edge(0, 1, "derived", "r")])
        assert extended.edge_between(0, 1).kind == "derived"
        assert ip.edge_between(0, 1) is None

    def test_describe_lists_classes_and_edges(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")],
                                [Edge(0, 1, "derived", "r")])
        text = ip.describe()
        assert "A, B" in text
        assert "derived" in text


class TestEdge:
    def test_touches_and_other(self):
        edge = Edge(2, 5)
        assert edge.touches(2) and edge.touches(5)
        assert not edge.touches(3)
        assert edge.other(2) == 5
        assert edge.other(5) == 2
