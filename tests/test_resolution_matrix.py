"""Table-driven association-resolution tests: the complete behaviour of
the association operator across the University schema's class pairs —
the single most load-bearing semantic in the language."""

import pytest

from repro.errors import AmbiguousPathError, NoAssociationError
from repro.university.schema import build_university_schema


@pytest.fixture(scope="module")
def schema():
    return build_university_schema()


#: (left class, right class, expected kind, expected link name or None)
AGGREGATION_CASES = [
    # Direct links, both orientations.
    ("Teacher", "Section", "teaches"),
    ("Section", "Teacher", "teaches"),
    ("Student", "Section", "enrolled"),
    ("Section", "Course", "course"),
    ("Course", "Section", "course"),
    ("Student", "Department", "Major"),
    ("Department", "Student", "Major"),
    ("Course", "Department", "department"),
    ("Department", "Course", "department"),
    ("Transcript", "Student", "student"),
    ("Student", "Transcript", "student"),
    ("Transcript", "Course", "course"),
    ("Course", "Transcript", "course"),
    ("Advising", "Faculty", "faculty"),
    ("Faculty", "Advising", "faculty"),
    ("Advising", "Grad", "grad"),
    ("Grad", "Advising", "grad"),
    # Inherited along unique generalization paths.
    ("Faculty", "Section", "teaches"),     # Faculty <= Teacher
    ("Grad", "Section", "enrolled"),       # Grad <= Student
    ("RA", "Section", "enrolled"),         # the paper's RA case
    ("Undergrad", "Section", "enrolled"),
    ("Grad", "Department", "Major"),
    ("RA", "Department", "Major"),
    ("Undergrad", "Transcript", "student"),
    ("Grad", "Transcript", "student"),
    ("TA", "Advising", "grad"),            # TA <= Grad
    ("TA", "Department", "Major"),
    ("Advising", "TA", "grad"),
    # Self-association.
    ("Course", "Course", "prereq"),
]

IDENTITY_CASES = [
    ("TA", "Grad"), ("Grad", "TA"),
    ("TA", "Teacher"), ("Teacher", "TA"),
    ("TA", "Student"), ("TA", "Person"),
    ("Faculty", "Teacher"), ("Faculty", "Person"),
    ("Grad", "Student"), ("Student", "Person"),
    ("RA", "Grad"), ("Undergrad", "Student"),
]

AMBIGUOUS_CASES = [
    ("TA", "Section"),        # teaches (via Teacher) vs enrolled (via Grad)
    ("Section", "TA"),
]

UNASSOCIATED_CASES = [
    ("Person", "Section"),     # links are not inherited upward
    ("Person", "Department"),
    ("Person", "Transcript"),
    ("Teacher", "Department"),
    ("Teacher", "Transcript"),
    ("Teacher", "Course"),     # only via Section
    ("Student", "Faculty"),    # Advising connects Grad, not Student
    ("Faculty", "RA"),         # siblings under Teacher/Grad
    ("Undergrad", "Grad"),
    ("Section", "Department"),
    ("Advising", "Undergrad"),
    ("Teacher", "Advising"),   # Advising connects Faculty, not Teacher
]


class TestAggregationResolution:
    @pytest.mark.parametrize("a,b,link", AGGREGATION_CASES)
    def test_resolves_to_link(self, schema, a, b, link):
        resolved = schema.resolve_link(a, b)
        assert resolved.kind == "aggregation"
        assert resolved.link.name == link

    @pytest.mark.parametrize("a,b,link", AGGREGATION_CASES)
    def test_orientation_is_consistent(self, schema, a, b, link):
        forward = schema.resolve_link(a, b)
        backward = schema.resolve_link(b, a)
        assert forward.link == backward.link
        if a != b:
            assert forward.a_is_owner != backward.a_is_owner


class TestIdentityResolution:
    @pytest.mark.parametrize("a,b", IDENTITY_CASES)
    def test_resolves_to_identity(self, schema, a, b):
        assert schema.resolve_link(a, b).kind == "identity"


class TestAmbiguity:
    @pytest.mark.parametrize("a,b", AMBIGUOUS_CASES)
    def test_raises_with_candidates(self, schema, a, b):
        with pytest.raises(AmbiguousPathError) as err:
            schema.resolve_link(a, b)
        assert len(err.value.candidates) >= 2


class TestUnassociated:
    @pytest.mark.parametrize("a,b", UNASSOCIATED_CASES)
    def test_raises_no_association(self, schema, a, b):
        with pytest.raises(NoAssociationError):
            schema.resolve_link(a, b)
