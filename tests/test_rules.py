"""Unit tests for rule parsing and static analysis."""

import pytest

from repro.errors import RuleSemanticError, RuleSyntaxError
from repro.rules.rule import DeductiveRule, TargetSpec, parse_rule
from repro.subdb.refs import ClassRef


class TestParsing:
    def test_basic_rule(self):
        rule = parse_rule("if context Teacher * Section * Course "
                          "then Teacher_course (Teacher, Course)")
        assert rule.target == "Teacher_course"
        assert [t.ref.cls for t in rule.targets] == ["Teacher", "Course"]

    def test_where_clause(self):
        rule = parse_rule(
            "if context Department * Course * Section * Student "
            "where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)")
        assert len(rule.where) == 1

    def test_attribute_subsetting(self):
        rule = parse_rule(
            "if context Teacher * Section * Course "
            "then Teacher_course (Teacher [SS#, degree], Course)")
        assert rule.targets[0].attrs == ("SS#", "degree")
        assert rule.targets[1].attrs is None

    def test_all_levels_marker(self):
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then GG (Grad, Grad_)")
        assert rule.targets[1].all_levels
        assert rule.targets[1].ref.cls == "Grad"

    def test_alias_target(self):
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then FT (Grad, Grad_2)")
        assert rule.targets[1].ref.alias == 2

    def test_qualified_context_ref(self):
        rule = parse_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)")
        refs = rule.context_refs()
        assert ClassRef("Course", "Suggest_offer") in refs

    def test_label_and_text_preserved(self):
        text = "if context Teacher * Section then X (Teacher)"
        rule = parse_rule(text, label="R9")
        assert rule.label == "R9"
        assert rule.text == text

    def test_str_reparses(self):
        rule = parse_rule(
            "if context Teacher * Section * Course "
            "where Course.c# > 5000 "
            "then X (Teacher [name], Course)")
        again = parse_rule(str(rule))
        assert again.targets == rule.targets
        assert again.where == rule.where

    def test_missing_then(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("if context Teacher * Section")

    def test_missing_if(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("context Teacher then X (Teacher)")

    def test_empty_targets(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("if context Teacher then X ()")

    def test_trailing_garbage(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("if context Teacher then X (Teacher) and more")


class TestValidation:
    def test_target_not_in_context_rejected(self):
        with pytest.raises(RuleSemanticError):
            parse_rule("if context Teacher * Section then X (Course)")

    def test_target_matching_by_class_allowed(self):
        # R4's 'Course' for context class 'Suggest_offer:Course'.
        rule = parse_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)")
        rule.validate()

    def test_loop_alias_levels_accepted(self):
        rule = parse_rule(
            "if context Grad * TA * Teacher * Section * Student * "
            "Grad_1 ^* then FT (Grad, Grad_7)")
        rule.validate()

    def test_alias_target_without_loop_rejected(self):
        with pytest.raises(RuleSemanticError):
            parse_rule("if context Grad * Advising then X (Grad_2)")

    def test_all_levels_of_absent_class_rejected(self):
        with pytest.raises(RuleSemanticError):
            parse_rule("if context Teacher * Section then X (Course_)")


class TestStaticAnalysis:
    def test_source_subdatabases_from_context(self):
        rule = parse_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)")
        assert rule.source_subdatabases() == {"Suggest_offer"}

    def test_source_subdatabases_from_where(self):
        rule = parse_rule(
            "if context Department * Suggest_offer:Course "
            "where COUNT(Suggest_offer:Course by Department) > 20 "
            "then Deps_need_res (Department)")
        assert rule.source_subdatabases() == {"Suggest_offer"}

    def test_base_classes_exclude_derived(self):
        rule = parse_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)")
        assert rule.base_classes() == {"TA", "Teacher", "Section"}

    def test_where_refs_from_comparisons(self):
        rule = parse_rule(
            "if context A * B where A.x > B.y then X (A)")
        assert {r.cls for r in rule.where_refs()} == {"A", "B"}

    def test_context_refs_include_braced_elements(self):
        rule = parse_rule("if context {A * B} * C then X (A)")
        assert [r.cls for r in rule.context_refs()] == ["A", "B", "C"]
