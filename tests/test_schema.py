"""Unit tests for the S-diagram: construction, inheritance closure,
the inherited view (Figure 2.2), and association resolution (Section 3.2's
ambiguity semantics)."""

import pytest

from repro.errors import (
    AmbiguousPathError,
    DuplicateAssociationError,
    DuplicateClassError,
    GeneralizationCycleError,
    NoAssociationError,
    UnknownAttributeError,
    UnknownClassError,
)
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.university.schema import build_university_schema


@pytest.fixture
def uni():
    return build_university_schema()


class TestConstruction:
    def test_duplicate_eclass_rejected(self):
        s = Schema()
        s.add_eclass("A")
        with pytest.raises(DuplicateClassError):
            s.add_eclass("A")

    def test_dclass_eclass_name_collision_rejected(self):
        s = Schema()
        s.add_eclass("A")
        with pytest.raises(DuplicateClassError):
            s.add_dclass(INTEGER.__class__("A", int))

    def test_attribute_requires_known_owner(self):
        s = Schema()
        with pytest.raises(UnknownClassError):
            s.add_attribute("Ghost", "x", STRING)

    def test_attribute_requires_known_domain_by_name(self):
        s = Schema()
        s.add_eclass("A")
        with pytest.raises(UnknownClassError):
            s.add_attribute("A", "x", "no-such-domain")

    def test_duplicate_link_name_on_owner_rejected(self):
        s = Schema()
        s.add_eclass("A")
        s.add_eclass("B")
        s.add_association("A", "B")
        with pytest.raises(DuplicateAssociationError):
            s.add_association("A", "B")

    def test_association_link_defaults_to_target_name(self):
        s = Schema()
        s.add_eclass("A")
        s.add_eclass("B")
        link = s.add_association("A", "B")
        assert link.name == "B"

    def test_generalization_cycle_rejected(self):
        s = Schema()
        s.add_eclass("A")
        s.add_eclass("B")
        s.add_subclass("A", "B")
        with pytest.raises(GeneralizationCycleError):
            s.add_subclass("B", "A")

    def test_self_generalization_rejected(self):
        s = Schema()
        s.add_eclass("A")
        with pytest.raises(GeneralizationCycleError):
            s.add_subclass("A", "A")

    def test_transitive_generalization_cycle_rejected(self):
        s = Schema()
        for name in "ABC":
            s.add_eclass(name)
        s.add_subclass("A", "B")
        s.add_subclass("B", "C")
        with pytest.raises(GeneralizationCycleError):
            s.add_subclass("C", "A")


class TestGeneralizationClosure:
    def test_superclasses_transitive(self, uni):
        assert uni.superclasses("TA") == {"Grad", "Teacher", "Student",
                                          "Person"}

    def test_subclasses_transitive(self, uni):
        assert uni.subclasses("Person") == {
            "Student", "Teacher", "Grad", "Undergrad", "TA", "RA",
            "Faculty"}

    def test_multiple_inheritance(self, uni):
        assert "Teacher" in uni.superclasses("TA")
        assert "Grad" in uni.superclasses("TA")

    def test_is_subclass_of_reflexive(self, uni):
        assert uni.is_subclass_of("Grad", "Grad")

    def test_is_subclass_of_transitive(self, uni):
        assert uni.is_subclass_of("TA", "Person")
        assert not uni.is_subclass_of("Person", "TA")

    def test_related_by_generalization(self, uni):
        assert uni.related_by_generalization("TA", "Grad")
        assert uni.related_by_generalization("Grad", "TA")
        assert not uni.related_by_generalization("Teacher", "Student")

    def test_up_and_down(self, uni):
        assert "RA" in uni.down("Student")
        assert "Person" in uni.up("RA")

    def test_unknown_class_raises(self, uni):
        with pytest.raises(UnknownClassError):
            uni.superclasses("Ghost")


class TestAttributeVisibility:
    def test_inherited_attributes_visible(self, uni):
        attrs = uni.descriptive_attributes("TA")
        # name/SS# from Person, GPA from Student, degree from Teacher.
        assert {"name", "SS#", "GPA", "degree"} <= set(attrs)

    def test_own_attributes_visible(self, uni):
        assert "project" in uni.descriptive_attributes("RA")

    def test_attributes_not_inherited_upward(self, uni):
        assert "GPA" not in uni.descriptive_attributes("Person")

    def test_attribute_lookup_error_lists_visible(self, uni):
        with pytest.raises(UnknownAttributeError) as err:
            uni.attribute("Person", "GPA")
        assert "name" in str(err.value)

    def test_shadowing_nearer_definition_wins(self):
        s = Schema()
        s.add_eclass("A")
        s.add_eclass("B")
        s.add_subclass("A", "B")
        s.add_attribute("A", "x", STRING)
        s.add_attribute("B", "x", INTEGER)
        assert s.descriptive_attributes("B")["x"].target == "integer"
        assert s.descriptive_attributes("A")["x"].target == "string"


class TestInheritedView:
    """Figure 2.2: class RA with all inherited associations explicit."""

    def test_ra_view_includes_every_superclass_link(self, uni):
        partners = {(v.partner(), v.defined_at)
                    for v in uni.inherited_view("RA")}
        # Inherited entity associations:
        assert ("Section", "Student") in partners    # enrolled
        assert ("Department", "Student") in partners  # Major
        assert ("Transcript", "Student") in partners  # connects-to end
        assert ("Advising", "Grad") in partners
        # Own descriptive attribute:
        assert ("string", "RA") in partners           # project

    def test_ra_view_excludes_teacher_links(self, uni):
        # RA is not a Teacher subclass; teaches must not appear.
        names = {v.link.name for v in uni.inherited_view("RA")}
        assert "teaches" not in names

    def test_ta_view_includes_both_paths(self, uni):
        names = {v.link.name for v in uni.inherited_view("TA")}
        assert {"teaches", "enrolled"} <= names

    def test_view_marks_inheritance_origin(self, uni):
        view = uni.inherited_view("RA")
        enrolled = next(v for v in view if v.link.name == "enrolled")
        assert enrolled.defined_at == "Student"
        assert enrolled.viewer == "RA"


class TestResolveLink:
    def test_direct_association(self, uni):
        resolved = uni.resolve_link("Teacher", "Section")
        assert resolved.kind == "aggregation"
        assert resolved.link.name == "teaches"
        assert resolved.a_is_owner

    def test_reverse_orientation(self, uni):
        resolved = uni.resolve_link("Section", "Teacher")
        assert resolved.link.name == "teaches"
        assert not resolved.a_is_owner

    def test_inherited_association(self, uni):
        # RA inherits 'enrolled' from Student along a unique path.
        resolved = uni.resolve_link("RA", "Section")
        assert resolved.link.name == "enrolled"

    def test_ambiguous_path_raises(self, uni):
        # The paper's TA * Section case.
        with pytest.raises(AmbiguousPathError) as err:
            uni.resolve_link("TA", "Section")
        names = {link.name for link in err.value.candidates}
        assert names == {"teaches", "enrolled"}

    def test_identity_for_generalization(self, uni):
        assert uni.resolve_link("TA", "Grad").kind == "identity"
        assert uni.resolve_link("Grad", "TA").kind == "identity"

    def test_identity_not_for_siblings(self, uni):
        with pytest.raises(NoAssociationError):
            uni.resolve_link("Faculty", "RA")

    def test_unassociated_classes_raise(self, uni):
        with pytest.raises(NoAssociationError):
            uni.resolve_link("Person", "Section")

    def test_self_association(self, uni):
        resolved = uni.resolve_link("Course", "Course")
        assert resolved.link.name == "prereq"
        assert resolved.a_is_owner

    def test_aggregation_preferred_over_identity(self, uni):
        # Course-Course has both a self link and trivial identity;
        # the aggregation wins.
        assert uni.resolve_link("Course", "Course").kind == "aggregation"

    def test_are_associated_helper(self, uni):
        assert uni.are_associated("Teacher", "Section")
        assert not uni.are_associated("TA", "Section")  # ambiguous
        assert not uni.are_associated("Person", "Section")

    def test_disambiguation_through_intermediate(self, uni):
        # TA * Teacher * Section and TA * Grad * Section both resolve.
        assert uni.resolve_link("TA", "Teacher").kind == "identity"
        assert uni.resolve_link("Teacher", "Section").link.name == "teaches"
        assert uni.resolve_link("TA", "Grad").kind == "identity"
        assert uni.resolve_link("Grad", "Section").link.name == "enrolled"


class TestCatalogListings:
    def test_eclass_names_sorted(self, uni):
        names = uni.eclass_names
        assert names == sorted(names)
        assert "Course" in names

    def test_generalizations_listing(self, uni):
        pairs = {(g.superclass, g.subclass) for g in uni.generalizations()}
        assert ("Grad", "TA") in pairs
        assert ("Teacher", "TA") in pairs

    def test_entity_links_at(self, uni):
        names = {l.name for l in uni.entity_links_at("Course")}
        # Emanating: department, prereq; connecting: Section.course,
        # Transcript.course, Course.prereq (self).
        assert {"department", "prereq", "course"} <= names
