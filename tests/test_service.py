"""Conformance suite for the asyncio query service (``repro.service``).

Covers the whole wire surface: every endpoint, malformed and oversized
frames, budget-tripped responses, mid-request disconnects, admission
control under saturation, trace-id correlation, WAL-backend serving,
and a seeded concurrent soak asserting served responses are
byte-identical to serial in-process evaluation.
"""

import json
import socket
import threading
import time
import random

import pytest

from repro import obs
from repro.oql.budget import QueryBudget
from repro.rules.engine import RuleEngine
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.storage.serialize import subdatabase_to_dict

from tests.test_concurrency import (
    READER_QUERIES,
    _complete_prereq,
    _dump,
    _paper_engine,
)

pytestmark = pytest.mark.service

ADVERSARIAL_QUERY = "context Course * Course_1 ^*"


# ---------------------------------------------------------------------------
# Fixtures / helpers
# ---------------------------------------------------------------------------


@pytest.fixture()
def paper_service(tmp_path):
    config = ServiceConfig(data_dir=str(tmp_path))
    with QueryService(_paper_engine(), config) as service:
        yield service


@pytest.fixture()
def client(paper_service):
    host, port = paper_service.address
    with ServiceClient(host, port, timeout=30) as c:
        yield c


def _adversarial_service(n: int = 12, **config_kwargs):
    """A service whose engine hosts a factorial ``^*`` evaluation —
    queries against it only ever finish by budget trip."""
    engine = RuleEngine(_complete_prereq(n), on_cycle="stop")
    return QueryService(engine, ServiceConfig(**config_kwargs))


def _raw_roundtrip(service, payload: bytes, timeout: float = 30.0):
    """Send raw bytes, read everything until the server closes, and
    decode the JSON-lines responses."""
    host, port = service.address
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    data = b"".join(chunks)
    return [json.loads(line) for line in data.splitlines() if line.strip()]


def _frame(**body) -> bytes:
    return json.dumps(body).encode() + b"\n"


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_ping(self, client):
        result = client.ping()
        assert result["pong"] is True
        assert isinstance(result["session"], int)

    def test_parse_query(self, client):
        result = client.parse(
            "context Teacher * Section * Course select name")
        assert result["kind"] == "query"
        assert "Teacher" in result["context"]
        assert result["canonical"].startswith("context")

    def test_parse_rule(self, client):
        result = client.parse(
            "if context Teacher * Section then Busy (Teacher)")
        assert result["kind"] == "rule"
        assert result["target"] == "Busy"
        assert "Teacher" in result["base_classes"]

    def test_parse_error_code(self, client):
        with pytest.raises(ServiceError) as exc:
            client.parse("context * * nonsense [")
        assert exc.value.code == "PARSE_ERROR"

    def test_query_basic(self, client):
        result = client.query("context Teacher * Section * Course")
        assert result["patterns"] > 0
        assert result["classes"] == ["Teacher", "Section", "Course"]
        assert "Teacher" in result["rendered"]
        assert isinstance(result["pinned_version"], int)

    def test_query_include_subdb_and_metrics(self, client):
        result = client.query("context Teacher * Section",
                              include=["subdb", "metrics"])
        assert result["subdatabase"]["slots"] == ["Teacher", "Section"]
        assert result["metrics"]

    def test_query_backward_chains_rule_target(self, client):
        result = client.query(
            "context Teacher_course:Teacher * Teacher_course:Course")
        assert result["patterns"] > 0

    def test_query_operation_result(self, client):
        result = client.query(
            "context Teacher * Section * Course display")
        assert "op_result" in result or result["rendered"]

    def test_query_unknown_class_is_not_found(self, client):
        with pytest.raises(ServiceError) as exc:
            client.query("context Klingon * Teacher")
        assert exc.value.code == "NOT_FOUND"

    def test_derive(self, client):
        result = client.derive("Teacher_course")
        assert result["target"] == "Teacher_course"
        assert result["patterns"] > 0
        assert result["classes"] == ["Teacher", "Course"]

    def test_derive_unknown_target(self, client):
        with pytest.raises(ServiceError) as exc:
            client.derive("No_such_target")
        assert exc.value.code == "NOT_FOUND"

    def test_rule_lifecycle(self, client):
        added = client.rule_add(
            "if context Grad * Transcript then Enrolled (Grad)",
            label="RT")
        assert added["target"] == "Enrolled"
        assert client.query("context Enrolled:Grad")["patterns"] >= 0
        removed = client.rule_remove("RT")
        assert removed["removed"] == "RT"
        with pytest.raises(ServiceError) as exc:
            client.query("context Enrolled:Grad")
        assert exc.value.code == "NOT_FOUND"

    def test_rule_remove_unknown_label(self, client):
        with pytest.raises(ServiceError) as exc:
            client.rule_remove("NOPE")
        assert exc.value.code == "SEMANTIC"

    def test_rule_add_bad_mode(self, client):
        with pytest.raises(ServiceError) as exc:
            client.rule_add("if context Teacher * Section "
                            "then B (Teacher)", mode="sideways")
        assert exc.value.code == "BAD_REQUEST"

    def test_update_insert_and_read_back(self, client):
        result = client.update({"kind": "insert", "cls": "Teacher",
                                "attrs": {"name": "Turing",
                                          "SS#": "999-00-1111"}})
        assert result["applied"] == 1
        oid = result["results"][0]["oid"]
        assert isinstance(oid, int)
        rendered = client.query("context Teacher[name = 'Turing']")
        assert rendered["patterns"] == 1

    def test_update_batch_and_mutations(self, client):
        inserted = client.update(
            {"kind": "insert", "cls": "Course",
             "attrs": {"c#": 9001, "title": "Svc", "credit_hours": 3}},
            {"kind": "insert", "cls": "Course",
             "attrs": {"c#": 9002, "title": "Svc2", "credit_hours": 3}})
        assert inserted["applied"] == 2
        a, b = (r["oid"] for r in inserted["results"])
        client.update({"kind": "associate", "owner": b,
                       "name": "prereq", "target": a})
        client.update({"kind": "set_attribute", "oid": a,
                       "name": "title", "value": "Renamed"})
        assert client.query(
            "context Course[title = 'Renamed']")["patterns"] == 1
        client.update({"kind": "dissociate", "owner": b,
                       "name": "prereq", "target": a})
        client.update({"kind": "delete", "oid": b})
        assert client.query(
            "context Course[c# = 9002]")["patterns"] == 0

    def test_update_bad_kind(self, client):
        with pytest.raises(ServiceError) as exc:
            client.update({"kind": "explode"})
        assert exc.value.code == "BAD_REQUEST"

    def test_update_requires_list(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("update", updates={})
        assert exc.value.code == "BAD_REQUEST"

    def test_snapshot_pin_and_refresh(self, paper_service, client):
        pinned = client.query("context Teacher")["pinned_version"]
        host, port = paper_service.address
        with ServiceClient(host, port) as other:
            other.update({"kind": "insert", "cls": "Teacher",
                          "attrs": {"name": "Later",
                                    "SS#": "000-00-0000"}})
        # Still pinned: the other session's write is invisible...
        again = client.query("context Teacher[name = 'Later']")
        assert again["pinned_version"] == pinned
        assert again["patterns"] == 0
        # ...until this session refreshes.
        refreshed = client.refresh()["pinned_version"]
        assert refreshed > pinned
        assert client.query(
            "context Teacher[name = 'Later']")["patterns"] == 1

    def test_session_save_and_restore(self, paper_service, client):
        client.rule_add("if context Grad * Transcript "
                        "then Enrolled (Grad)", label="KEEP")
        client.session_save("snap.json")
        client.rule_remove("KEEP")
        restored = client.session_restore("snap.json")
        assert restored["rules"] == len(paper_service.engine.rules)
        assert restored["objects"] > 0
        # The restored engine answers the saved rule's target.
        client.refresh()
        assert client.query("context Enrolled:Grad")["patterns"] >= 0

    def test_session_restore_missing_file(self, client):
        with pytest.raises(ServiceError) as exc:
            client.session_restore("never-saved.json")
        assert exc.value.code == "NOT_FOUND"

    def test_session_path_traversal_refused(self, client):
        with pytest.raises(ServiceError) as exc:
            client.session_save("../outside.json")
        assert exc.value.code == "NOT_FOUND"

    def test_stats_shape(self, client):
        client.ping()
        stats = client.stats()
        server = stats["server"]
        assert server["max_concurrency"] >= 1
        assert server["connections_total"] >= 1
        assert server["requests_total"] >= 1
        assert server["admitted_total"] >= 1
        assert server["ops"]["ping"] >= 1
        assert "engine" in stats and "db" in stats
        assert stats["rules"]  # the paper rules
        assert stats["workers"]["mode"] in ("thread", "process")
        assert "cache" in stats

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as exc:
            client.request("frobnicate")
        assert exc.value.code == "BAD_REQUEST"
        assert "known" in str(exc.value)


# ---------------------------------------------------------------------------
# Framing: malformed, oversized, pipelined, disconnects
# ---------------------------------------------------------------------------


class TestFraming:
    def test_malformed_json_then_recovers(self, paper_service):
        responses = _raw_roundtrip(
            paper_service,
            b"this is not json\n" + _frame(id=1, op="ping"))
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["code"] == "BAD_FRAME"
        # The connection survives a bad frame.
        assert responses[1]["ok"] is True
        assert responses[1]["id"] == 1

    def test_non_object_frame(self, paper_service):
        responses = _raw_roundtrip(paper_service, b"[1, 2, 3]\n")
        assert responses[0]["error"]["code"] == "BAD_FRAME"

    def test_missing_op(self, paper_service):
        responses = _raw_roundtrip(paper_service, b'{"id": 9}\n')
        assert responses[0]["error"]["code"] == "BAD_REQUEST"

    def test_blank_lines_ignored(self, paper_service):
        responses = _raw_roundtrip(
            paper_service, b"\n\n" + _frame(id=2, op="ping") + b"\n")
        assert len(responses) == 1
        assert responses[0]["id"] == 2

    def test_unterminated_final_frame_still_answered(self, paper_service):
        payload = json.dumps({"id": 3, "op": "ping"}).encode()  # no \n
        responses = _raw_roundtrip(paper_service, payload)
        assert responses[0]["ok"] is True
        assert responses[0]["id"] == 3

    def test_oversized_frame_refused_and_closed(self):
        config = ServiceConfig(max_frame_bytes=1024)
        with QueryService(_paper_engine(), config) as service:
            big = _frame(id=1, op="query", text="x" * 4096)
            responses = _raw_roundtrip(service, big)
            assert responses[0]["error"]["code"] == "OVERSIZED"
            assert len(responses) == 1  # connection closed after refusal

    def test_pipelined_requests_answered_in_order(self, paper_service):
        payload = (_frame(id="a", op="ping")
                   + _frame(id="b", op="query", text="context Teacher")
                   + _frame(id="c", op="ping"))
        responses = _raw_roundtrip(paper_service, payload)
        assert [r["id"] for r in responses] == ["a", "b", "c"]
        assert all(r["ok"] for r in responses)

    def test_mid_request_disconnect_leaves_server_healthy(self):
        """A client that walks away mid-evaluation must not wedge the
        server: the request runs to its budget verdict in the worker,
        the dead socket is tolerated, and inflight drains to zero."""
        with _adversarial_service() as service:
            host, port = service.address
            sock = socket.create_connection((host, port), timeout=10)
            sock.sendall(_frame(id=1, op="query", text=ADVERSARIAL_QUERY,
                                budget={"deadline_ms": 300}))
            time.sleep(0.05)  # let the request be admitted
            sock.close()      # vanish mid-request
            with ServiceClient(host, port) as c:
                assert c.ping()["pong"] is True
            # healthz reads inflight off the event loop without being
            # admitted itself, so it can observe a true zero.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, body = _http(service,
                                     b"GET /healthz HTTP/1.1\r\n\r\n")
                assert status == 200
                if body["inflight"] == 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("inflight never drained after disconnect")


# ---------------------------------------------------------------------------
# Budgets: trips, clamping, validation
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_deadline_trips_adversarial_query(self):
        with _adversarial_service() as service:
            with ServiceClient(*service.address) as c:
                started = time.monotonic()
                with pytest.raises(ServiceError) as exc:
                    c.query(ADVERSARIAL_QUERY,
                            budget={"deadline_ms": 150})
                elapsed = time.monotonic() - started
        assert exc.value.code == "BUDGET_EXCEEDED"
        assert exc.value.detail["verdict"] == "deadline"
        assert exc.value.detail["elapsed_ms"] >= 150
        assert elapsed < 30  # nowhere near the factorial runtime

    def test_max_rows_trips(self, client):
        with pytest.raises(ServiceError) as exc:
            client.query("context Teacher * Section * Course",
                         budget={"max_rows": 1})
        assert exc.value.code == "BUDGET_EXCEEDED"
        assert exc.value.detail["verdict"] == "max_rows"

    def test_budget_applies_to_derive_cascade(self):
        """The ambient budget charges backward-chained derivations,
        not just the query's own pattern evaluation."""
        engine = RuleEngine(_complete_prereq(12), on_cycle="stop")
        engine.add_rule("if context Course * Course_1 ^* "
                        "then Reach (Course, Course_)", label="R")
        with QueryService(engine, ServiceConfig()) as service:
            with ServiceClient(*service.address) as c:
                with pytest.raises(ServiceError) as exc:
                    c.derive("Reach", budget={"deadline_ms": 150})
        assert exc.value.code == "BUDGET_EXCEEDED"

    def test_server_caps_clamp_client_budget(self):
        """A client asking for a huge deadline still trips at the
        server's ceiling — admission control is not client-optional."""
        with _adversarial_service(max_deadline_ms=200.0) as service:
            with ServiceClient(*service.address) as c:
                started = time.monotonic()
                with pytest.raises(ServiceError) as exc:
                    c.query(ADVERSARIAL_QUERY,
                            budget={"deadline_ms": 3_600_000})
                elapsed = time.monotonic() - started
        assert exc.value.code == "BUDGET_EXCEEDED"
        assert elapsed < 30

    def test_unbudgeted_request_inherits_caps(self):
        """Even a request with no budget at all is bounded."""
        with _adversarial_service(max_deadline_ms=200.0) as service:
            with ServiceClient(*service.address) as c:
                with pytest.raises(ServiceError) as exc:
                    c.query(ADVERSARIAL_QUERY)
        assert exc.value.code == "BUDGET_EXCEEDED"

    @pytest.mark.parametrize("budget", [
        {"deadline_ms": -5},
        {"deadline_ms": "soon"},
        {"unknown_axis": 10},
        "not-a-dict",
    ])
    def test_invalid_budget_rejected(self, client, budget):
        with pytest.raises(ServiceError) as exc:
            client.request("query", text="context Teacher",
                           budget=budget)
        assert exc.value.code == "BAD_REQUEST"

    def test_from_limits_clamps_and_inherits(self):
        caps = {"deadline_ms": 1000.0, "max_rows": 100,
                "max_loop_levels": 8}
        clamped = QueryBudget.from_limits(
            {"deadline_ms": 5000, "max_rows": 7}, caps)
        assert clamped.deadline_ms == 1000.0  # clamped to cap
        assert clamped.max_rows == 7          # under cap: kept
        assert clamped.max_loop_levels == 8   # unspecified: inherits
        inherited = QueryBudget.from_limits(None, caps)
        assert (inherited.deadline_ms, inherited.max_rows) == (1000.0, 100)
        with pytest.raises(ValueError):
            QueryBudget.from_limits({"rows": 5}, caps)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_saturated_server_sheds_with_busy(self):
        """With max_concurrency=1 and the single slot burning on an
        adversarial query, a second connection is shed with a
        structured BUSY — never queued behind the hog."""
        with _adversarial_service(max_concurrency=1) as service:
            host, port = service.address
            hog_result = {}

            def hog():
                with ServiceClient(host, port, timeout=60) as c:
                    hog_result.update(c.request(
                        "query", text=ADVERSARIAL_QUERY,
                        budget={"deadline_ms": 3000},
                        raise_on_error=False))

            thread = threading.Thread(target=hog)
            thread.start()
            try:
                # Wait until the hog actually holds the slot (healthz
                # is answered on the event loop without being admitted,
                # so it cannot steal the slot or be shed itself).
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    status, body = _http(service,
                                         b"GET /healthz HTTP/1.1\r\n\r\n")
                    assert status == 200
                    if body["inflight"] >= 1:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("hog request was never admitted")
                saw_busy = None
                with ServiceClient(host, port, timeout=30) as probe:
                    while time.monotonic() < deadline:
                        response = probe.request("ping",
                                                 raise_on_error=False)
                        if not response["ok"]:
                            saw_busy = response["error"]
                            break
                        time.sleep(0.01)
            finally:
                thread.join()
            assert saw_busy is not None, "server never shed load"
            assert saw_busy["code"] == "BUSY"
            assert saw_busy["retry_after_ms"] > 0
            # The hog itself ended with its budget verdict...
            assert hog_result["error"]["code"] == "BUDGET_EXCEEDED"
            # ...and the server recovered: admission works again.
            with ServiceClient(host, port) as c:
                assert c.ping()["pong"] is True
                counters = c.stats()["server"]
                assert counters["shed_total"] >= 1

    def test_concurrent_connections_under_limit_all_served(self,
                                                           paper_service):
        host, port = paper_service.address
        errors = []

        def reader(i):
            try:
                with ServiceClient(host, port) as c:
                    for _ in range(5):
                        c.query("context Teacher * Section")
            except Exception as exc:  # pragma: no cover
                errors.append((i, exc))

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestTracing:
    def test_trace_id_correlates_request_to_engine_spans(self):
        fresh_install = obs.TRACER is None
        try:
            config = ServiceConfig(trace=True)
            with QueryService(_paper_engine(), config) as service:
                with ServiceClient(*service.address) as c:
                    response = c.request(
                        "query",
                        text="context Teacher_course:Teacher "
                             "* Teacher_course:Course")
                    trace_id = response["trace_id"]
                    assert isinstance(trace_id, int)
                    root = obs.TRACER.recorder.get(trace_id)
                    assert root is not None
                    assert root.name == "service-request"
                    assert root.attrs["op"] == "query"
                    # Engine work nested under the request root.
                    assert root.children

                    # Errors carry the trace id too.
                    failed = c.request("query", text="context Klingon",
                                       raise_on_error=False)
                    assert isinstance(failed["error"]["trace_id"], int)
                    assert failed["error"]["trace_id"] != trace_id
        finally:
            if fresh_install:
                obs.uninstall()


# ---------------------------------------------------------------------------
# WAL-backed serving
# ---------------------------------------------------------------------------


class TestBackendServing:
    def test_served_writes_survive_restart(self, tmp_path):
        root = str(tmp_path / "store")
        config = ServiceConfig(backend_path=root)
        with QueryService(_paper_engine(), config) as service:
            with ServiceClient(*service.address) as c:
                c.update({"kind": "insert", "cls": "Teacher",
                          "attrs": {"name": "Durable",
                                    "SS#": "123-45-6789"}})
                assert c.stats()["backend"]["kind"] == "json"
        # engine=None: the service recovers the journaled session.
        with QueryService(None, ServiceConfig(backend_path=root)) as s2:
            with ServiceClient(*s2.address) as c:
                found = c.query("context Teacher[name = 'Durable']")
                assert found["patterns"] == 1

    def test_stateful_backend_refuses_foreign_engine(self, tmp_path):
        root = str(tmp_path / "store")
        with QueryService(_paper_engine(),
                          ServiceConfig(backend_path=root)):
            pass
        with pytest.raises(ValueError, match="already"):
            QueryService(_paper_engine(),
                         ServiceConfig(backend_path=root))

    def test_restore_refused_while_backend_attached(self, tmp_path):
        config = ServiceConfig(backend_path=str(tmp_path / "store"),
                               data_dir=str(tmp_path / "data"))
        with QueryService(_paper_engine(), config) as service:
            with ServiceClient(*service.address) as c:
                c.session_save("snap.json")
                with pytest.raises(ServiceError) as exc:
                    c.session_restore("snap.json")
                assert exc.value.code == "SEMANTIC"
                assert "backend" in str(exc.value)


# ---------------------------------------------------------------------------
# HTTP face
# ---------------------------------------------------------------------------


def _http(service, request: bytes) -> tuple:
    host, port = service.address
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(request)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body) if body.strip() else None


class TestHTTPFace:
    def test_healthz(self, paper_service):
        status, body = _http(paper_service,
                             b"GET /healthz HTTP/1.1\r\n\r\n")
        assert status == 200
        assert body["ok"] is True

    def test_post_query(self, paper_service):
        payload = json.dumps(
            {"text": "context Teacher * Section * Course"}).encode()
        request = (b"POST /v1/query HTTP/1.1\r\n"
                   b"Content-Type: application/json\r\n"
                   + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                   + payload)
        status, body = _http(paper_service, request)
        assert status == 200
        assert body["ok"] is True
        assert body["result"]["patterns"] > 0

    def test_get_stats(self, paper_service):
        status, body = _http(paper_service,
                             b"GET /v1/stats HTTP/1.1\r\n\r\n")
        assert status == 200
        assert body["result"]["server"]["requests_total"] >= 1

    def test_unknown_path_404(self, paper_service):
        status, body = _http(paper_service,
                             b"GET /nope HTTP/1.1\r\n\r\n")
        assert status == 404
        assert body["error"]["code"] == "NOT_FOUND"

    def test_parse_error_maps_to_422(self, paper_service):
        payload = json.dumps({"text": "context ["}).encode()
        request = (b"POST /v1/query HTTP/1.1\r\n"
                   + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                   + payload)
        status, body = _http(paper_service, request)
        assert status == 422
        assert body["error"]["code"] == "PARSE_ERROR"

    def test_oversized_body_maps_to_413(self):
        config = ServiceConfig(max_frame_bytes=1024)
        with QueryService(_paper_engine(), config) as service:
            payload = b'{"text": "' + b"x" * 4096 + b'"}'
            request = (b"POST /v1/query HTTP/1.1\r\n"
                       + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                       + payload)
            status, body = _http(service, request)
        assert status == 413
        assert body["error"]["code"] == "OVERSIZED"


# ---------------------------------------------------------------------------
# Seeded concurrent soak: served == serial, byte for byte
# ---------------------------------------------------------------------------


def _serial_reference(engine) -> dict:
    """Evaluate every soak query serially in-process over a pinned
    snapshot; the canonical bytes are what the service must reproduce
    under concurrency."""
    processor = engine.snapshot_session()
    try:
        return {query: _dump(processor.execute(query).subdatabase)
                for query in READER_QUERIES}
    finally:
        processor.universe.close()


def _served_dump(result: dict) -> bytes:
    doc = result["subdatabase"]
    doc["name"] = "_"
    return json.dumps(doc, sort_keys=True).encode()


class TestConcurrentSoak:
    def test_soak_responses_byte_identical_to_serial(self, paper_service):
        """The load-bearing conformance property: N connections issuing
        a seeded shuffle of reads (base patterns and backward-chained
        rule targets) each receive exactly the bytes serial in-process
        evaluation produces — concurrency changes latency, never
        answers."""
        expected = _serial_reference(paper_service.engine)
        host, port = paper_service.address
        failures = []

        def worker(worker_id):
            rng = random.Random(1000 + worker_id)
            try:
                with ServiceClient(host, port, timeout=60) as c:
                    for step in range(8):
                        query = rng.choice(READER_QUERIES)
                        result = c.query(query, include=["subdb"])
                        if _served_dump(result) != expected[query]:
                            failures.append(
                                (worker_id, step, query, "bytes differ"))
            except Exception as exc:
                failures.append((worker_id, None, None, repr(exc)))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []

    def test_soak_readers_isolated_from_live_writer(self, paper_service):
        """Byte-identity must hold even while a writer mutates the live
        database: reader connections pin their snapshot up front, so
        every response equals the pre-write serial reference."""
        expected = _serial_reference(paper_service.engine)
        host, port = paper_service.address
        failures = []
        stop_writing = threading.Event()

        def writer():
            with ServiceClient(host, port, timeout=60) as c:
                i = 0
                while not stop_writing.is_set():
                    i += 1
                    c.update({"kind": "insert", "cls": "Teacher",
                              "attrs": {"name": f"W{i}",
                                        "SS#": f"w-{i}"}})
                    time.sleep(0.002)

        def reader(worker_id):
            rng = random.Random(2000 + worker_id)
            try:
                with ServiceClient(host, port, timeout=60) as c:
                    pinned = c.query(READER_QUERIES[0],
                                     include=["subdb"])
                    versions = {pinned["pinned_version"]}
                    for _ in range(6):
                        query = rng.choice(READER_QUERIES)
                        result = c.query(query, include=["subdb"])
                        versions.add(result["pinned_version"])
                        if _served_dump(result) != expected[query]:
                            failures.append((worker_id, query))
                    if len(versions) != 1:
                        failures.append((worker_id, "pin moved",
                                         sorted(versions)))
            except Exception as exc:
                failures.append((worker_id, repr(exc)))

        # Readers pin before the writer starts mutating.
        readers = [threading.Thread(target=reader, args=(i,))
                   for i in range(3)]
        for t in readers:
            t.start()
        time.sleep(0.01)
        writing = threading.Thread(target=writer)
        writing.start()
        for t in readers:
            t.join()
        stop_writing.set()
        writing.join()
        assert failures == []


# ---------------------------------------------------------------------------
# Live subscriptions over the wire
# ---------------------------------------------------------------------------


SUBSCRIBE_QUERIES = (
    "context Teacher * Section",
    "context Teacher",
    "context Student * Section * Course",
    "context Course",
)


def _engine_rows(engine, text):
    """Canonical current rows by direct in-process evaluation — the
    serial reference every folded stream must converge to."""
    from repro.oql.parser import parse_query
    query = parse_query(text)
    source = engine.evaluator.evaluate(query.context, query.where)
    return {tuple(None if v is None else v.value for v in p.values)
            for p in source.patterns}


def _fold_wire(state, frames):
    """Apply drained wire frames, checking the delta invariants."""
    last_seq = 0
    for frame in frames:
        assert frame["seq"] > last_seq, "seq not strictly increasing"
        last_seq = frame["seq"]
        assert frame["kind"] in ("delta", "resync"), frame
        added = {tuple(r) for r in frame["added"]}
        removed = {tuple(r) for r in frame["removed"]}
        if frame["kind"] == "resync":
            state = added
        else:
            assert not added & state, "delta re-added a present row"
            assert removed <= state, "delta removed an absent row"
            state = (state - removed) | added
    return state


class TestLiveSubscriptions:
    def test_subscribe_delta_roundtrip(self, paper_service):
        """Snapshot, one pushed delta per relevant write, silence on
        unrelated writes, silence after unsubscribe."""
        engine = paper_service.engine
        host, port = paper_service.address
        with ServiceClient(host, port) as watcher, \
                ServiceClient(host, port) as writer:
            res = watcher.subscribe("context Teacher * Section")
            sid = res["subscription"]
            assert res["kind"] == "snapshot" and res["seq"] == 0
            assert res["incremental"] is True
            assert res["classes"] == ["Section", "Teacher"]
            state = {tuple(r) for r in res["rows"]}
            assert state == _engine_rows(engine,
                                         "context Teacher * Section")
            teachers = sorted(o.value for o in engine.db.extent("Teacher"))
            sections = sorted(o.value for o in engine.db.extent("Section"))
            pair = next((t, s) for t in teachers for s in sections
                        if (t, s) not in state)
            writer.update({"kind": "associate", "owner": pair[0],
                           "name": "teaches", "target": pair[1]})
            frame = watcher.next_delta(sid, timeout=10)
            assert frame is not None
            assert frame["kind"] == "delta" and frame["seq"] == 1
            assert frame["added"] == [list(pair)]
            assert frame["removed"] == []
            assert len(frame["vector"]) == 3  # schema + 2 classes
            # An unrelated-class write never wakes the subscriber.
            writer.update({"kind": "insert", "cls": "Department",
                           "attrs": {"name": "Nowhere"}})
            assert watcher.next_delta(sid, timeout=0.5) is None
            # After unsubscribe, even relevant writes deliver nothing.
            assert watcher.unsubscribe(sid)["unsubscribed"] == sid
            writer.update({"kind": "dissociate", "owner": pair[0],
                           "name": "teaches", "target": pair[1]})
            assert watcher.next_delta(sid, timeout=0.5) is None

    def test_soak_concurrent_subscribers_fold_to_serial(
            self, paper_service):
        """The satellite soak: 8 subscriber connections + one live
        writer; every folded stream (initial ⊕ deltas) must equal the
        final serial evaluation, and closing the clients returns the
        engine's listener count to its baseline."""
        engine = paper_service.engine
        baseline = engine.db.listener_count()
        host, port = paper_service.address
        teachers = sorted(o.value for o in engine.db.extent("Teacher"))
        sections = sorted(o.value for o in engine.db.extent("Section"))
        clients, subs, failures = [], [], []
        try:
            for i, text in enumerate(SUBSCRIBE_QUERIES * 2):
                c = ServiceClient(host, port, timeout=60)
                clients.append(c)
                res = c.subscribe(text)
                subs.append((c, text, res["subscription"],
                             {tuple(r) for r in res["rows"]}))
            assert paper_service.streaming.active_count() == len(subs)

            def write_storm():
                rng = random.Random(97)
                with ServiceClient(host, port, timeout=60) as w:
                    for i in range(40):
                        roll = rng.random()
                        try:
                            if roll < 0.35:
                                w.update({"kind": "insert",
                                          "cls": "Teacher",
                                          "attrs": {"name": f"Soak{i}",
                                                    "SS#": f"so-{i}"}})
                            elif roll < 0.70:
                                w.update({"kind": "associate",
                                          "owner": rng.choice(teachers),
                                          "name": "teaches",
                                          "target": rng.choice(sections)})
                            else:
                                w.update({"kind": "dissociate",
                                          "owner": rng.choice(teachers),
                                          "name": "teaches",
                                          "target": rng.choice(sections)})
                        except ServiceError:
                            pass  # double links / missing links

            storm = threading.Thread(target=write_storm)
            storm.start()
            storm.join()
            for c, text, sid, state in subs:
                frames = c.drain_deltas(sid, idle=0.6)
                folded = _fold_wire(state, frames)
                expected = _engine_rows(engine, text)
                if folded != expected:
                    failures.append(
                        f"{text!r}: folded {len(folded)} row(s) != "
                        f"serial {len(expected)} after "
                        f"{len(frames)} frame(s)")
        finally:
            for c in clients:
                c.close()
        assert failures == [], "\n".join(failures)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and (
                paper_service.streaming.active_count()
                or engine.db.listener_count() != baseline):
            time.sleep(0.05)
        assert paper_service.streaming.active_count() == 0
        assert engine.db.listener_count() == baseline, \
            "subscription listener leaked past client disconnect"

    def test_mid_stream_disconnect_reaps(self, paper_service):
        """An abrupt socket close (no unsubscribe) must reap the
        session's subscriptions and detach the shared listener."""
        engine = paper_service.engine
        baseline = engine.db.listener_count()
        host, port = paper_service.address
        c = ServiceClient(host, port)
        c.subscribe("context Teacher")
        assert paper_service.streaming.active_count() == 1
        assert engine.db.listener_count() == baseline + 1
        c.close()  # abrupt: the server sees EOF mid-stream
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and (
                paper_service.streaming.active_count()
                or engine.db.listener_count() != baseline):
            time.sleep(0.05)
        assert paper_service.streaming.active_count() == 0
        assert engine.db.listener_count() == baseline

    def test_subscription_cap_sheds_with_busy(self):
        config = ServiceConfig(max_subscriptions=2)
        with QueryService(_paper_engine(), config) as service:
            with ServiceClient(*service.address) as c:
                c.subscribe("context Teacher")
                c.subscribe("context Course")
                with pytest.raises(ServiceError) as exc:
                    c.subscribe("context Section")
                assert exc.value.code == "BUSY"
                assert service.streaming.active_count() == 2

    def test_subscribe_parse_and_budget_errors(self, client):
        with pytest.raises(ServiceError) as exc:
            client.subscribe("context [")
        assert exc.value.code == "PARSE_ERROR"
        with pytest.raises(ServiceError) as exc:
            client.subscribe("context Teacher * Section * Course",
                             budget={"max_rows": 1})
        assert exc.value.code == "BUDGET_EXCEEDED"

    def test_unsubscribe_unknown_id_not_found(self, client):
        with pytest.raises(ServiceError) as exc:
            client.unsubscribe(12345)
        assert exc.value.code == "NOT_FOUND"

    def test_http_subscribe_refused(self, paper_service):
        payload = json.dumps({"text": "context Teacher"}).encode()
        request = (b"POST /v1/subscribe HTTP/1.1\r\n"
                   + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                   + payload)
        status, body = _http(paper_service, request)
        assert status == 422
        assert body["error"]["code"] == "SEMANTIC"
        assert "JSON-lines" in body["error"]["message"]

    def test_stats_subscriptions_section(self, paper_service, client):
        client.subscribe("context Teacher")
        stats = client.stats()
        section = stats["subscriptions"]
        assert section["active"] == 1
        assert section["manager"]["subscribed"] == 1
        assert section["db_listener_attached"] is True
