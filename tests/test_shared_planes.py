"""Shared-memory planes and the process-partition executor.

The acceptance bar for the process path is *zero leaked segments* under
every exit, including the ugly ones: a stale manifest must be rejected
(not silently read), a budget trip must cancel the other partitions
mid-flight, and a worker crash must surface as a typed error with the
pool recovered and ``/dev/shm`` clean afterwards.  :func:`leak_check`
runs after **every** test in this module — the observable is
:func:`repro.subdb.planes.live_planes` plus the actual ``/dev/shm``
listing.
"""

import os
from array import array

import pytest

from repro import QueryProcessor, Universe
from repro.oql import kernels, parallel
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.subdb import planes
from repro.university.generator import GeneratorConfig, generate_university

pytestmark = pytest.mark.multicore


def _shm_segments():
    try:
        return sorted(f for f in os.listdir("/dev/shm")
                      if f.startswith("psm_"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def leak_check():
    """Every test must drain the live-plane table and /dev/shm."""
    before = _shm_segments()
    yield
    assert planes.live_planes() == []
    leaked = [name for name in _shm_segments() if name not in before]
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


# ---------------------------------------------------------------------------
# SharedPlane primitives
# ---------------------------------------------------------------------------


class TestSharedPlane:
    def test_roundtrip(self):
        data = array("q", [3, 1, 4, 1, 5, 9, 2, 6])
        plane = planes.SharedPlane.create(data, token=17)
        try:
            assert plane.name in planes.live_planes()
            other = planes.SharedPlane.attach(plane.name,
                                              expected_token=17)
            assert other.as_array() == data
            assert other.length == len(data)
            other.close()
        finally:
            plane.unlink()

    def test_empty_payload(self):
        plane = planes.SharedPlane.create(array("q"), token=0)
        try:
            other = planes.SharedPlane.attach(plane.name)
            assert other.as_array() == array("q")
            other.close()
        finally:
            plane.unlink()

    def test_stale_token_rejected(self):
        """A manifest from before a re-export must not read the new
        data: attach-after-write raises StalePlaneError."""
        plane = planes.SharedPlane.create(array("q", [1, 2, 3]), token=5)
        try:
            with pytest.raises(planes.StalePlaneError):
                planes.SharedPlane.attach(plane.name, expected_token=6)
        finally:
            plane.unlink()

    def test_attach_after_unlink_is_typed(self):
        plane = planes.SharedPlane.create(array("q", [1]), token=1)
        name = plane.name
        plane.unlink()
        with pytest.raises(planes.SharedPlaneError):
            planes.SharedPlane.attach(name)

    def test_unlink_idempotent(self):
        plane = planes.SharedPlane.create(array("q", [1]), token=1)
        plane.unlink()
        plane.unlink()

    def test_closed_plane_refuses_reads(self):
        plane = planes.SharedPlane.create(array("q", [1]), token=1)
        plane.unlink()
        with pytest.raises(planes.SharedPlaneError):
            plane.data


class TestPlaneManager:
    class Source:
        epoch = 0

    def test_export_caches_by_identity_epoch_token(self):
        manager = planes.PlaneManager()
        source = self.Source()
        arrays = {"offsets": array("q", [0, 1]),
                  "neighbors": array("q", [7])}
        try:
            manifest1, entry1 = manager.export("k", source, arrays, 9)
            manifest2, entry2 = manager.export("k", source, arrays, 9)
            assert entry1 is entry2 and manifest1 == manifest2
            assert len(manager) == 1
            manager.release(entry1)
            manager.release(entry2)
        finally:
            manager.close()
        assert planes.live_planes() == []

    def test_epoch_bump_reexports(self):
        manager = planes.PlaneManager()
        source = self.Source()
        arrays = {"offsets": array("q", [0])}
        try:
            manifest1, entry1 = manager.export("k", source, arrays, 9)
            manager.release(entry1)
            source.epoch = 1  # an in-place INSERT appended to the CSR
            manifest2, entry2 = manager.export("k", source, arrays, 9)
            assert manifest1["offsets"][0] != manifest2["offsets"][0]
            # the retired plane is gone already (no pins held it)
            with pytest.raises(planes.SharedPlaneError):
                planes.SharedPlane.attach(manifest1["offsets"][0])
            manager.release(entry2)
        finally:
            manager.close()

    def test_pinned_entry_defers_unlink(self):
        """Snapshot pinning: a query holding the old entry keeps its
        planes mapped while a writer forces a re-export; the unlink
        happens on the last release."""
        manager = planes.PlaneManager()
        source = self.Source()
        arrays = {"offsets": array("q", [0])}
        try:
            manifest1, entry1 = manager.export("k", source, arrays, 9)
            # do NOT release: an in-flight query still pins entry1
            manifest2, entry2 = manager.export("k", source, arrays, 10)
            # old plane still attachable while pinned
            old = planes.SharedPlane.attach(manifest1["offsets"][0])
            old.close()
            manager.release(entry1)  # query finishes -> deferred unlink
            with pytest.raises(planes.SharedPlaneError):
                planes.SharedPlane.attach(manifest1["offsets"][0])
            manager.release(entry2)
        finally:
            manager.close()


# ---------------------------------------------------------------------------
# Vectorized kernels: numpy and fallback must agree exactly
# ---------------------------------------------------------------------------


class TestKernelParity:
    # CSR over 4 sources: 0->{1,2}, 1->{2}, 2->{}, 3->{0,3}
    OFFSETS = array("q", [0, 2, 3, 3, 5])
    NEIGHBORS = array("q", [1, 2, 2, 0, 3])

    def _spec(self, op="*", tgt_filter=None):
        return kernels.StepSpec(op=op, forward=True,
                                offsets=self.OFFSETS,
                                neighbors=self.NEIGHBORS, tgt_size=4,
                                tgt_filter=tgt_filter)

    def test_star_and_bang_agree_across_modes(self, monkeypatch):
        anchor = kernels.anchor_column(range(4))
        results = {}
        for mode, value in (("numpy", None), ("fallback", object())):
            if value is not None:
                monkeypatch.setattr(kernels, "_np", None)
            specs = [self._spec("*"), self._spec("!")]
            cols, stats = kernels.run_steps(specs, anchor)
            results[mode] = (kernels.columns_to_rows(cols), stats)
            monkeypatch.undo()
        assert results["numpy"] == results["fallback"]

    def test_filter_respected_in_both_modes(self, monkeypatch):
        anchor = kernels.anchor_column(range(4))
        keep = array("q", [2])
        rows = {}
        for mode, disable in (("numpy", False), ("fallback", True)):
            if disable:
                monkeypatch.setattr(kernels, "_np", None)
            cols, _ = kernels.run_steps([self._spec("*", keep)], anchor)
            rows[mode] = kernels.columns_to_rows(cols)
            monkeypatch.undo()
        assert rows["numpy"] == rows["fallback"]
        assert all(row[-1] == 2 for row in rows["numpy"])


# ---------------------------------------------------------------------------
# The process executor end to end (through QueryProcessor)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def database():
    return generate_university(
        GeneratorConfig(departments=4, courses=50, students=300,
                        teachers=16, prereqs_per_course=2),
        seed=23).db


@pytest.fixture()
def process_qp(database):
    qp = QueryProcessor(Universe(database), workers=4,
                        worker_mode="process")
    qp.evaluator.min_parallel_rows = 1
    yield qp
    qp.close()


class TestProcessExecution:
    CHAIN = "context Teacher * Section * Student"
    LOOP = "context Course * Course_1 ^*"

    def test_chain_matches_serial(self, database, process_qp):
        from repro.storage.serialize import subdatabase_to_dict
        serial = QueryProcessor(Universe(database))
        want = subdatabase_to_dict(
            serial.execute(self.CHAIN, name="x").subdatabase)
        got = subdatabase_to_dict(
            process_qp.execute(self.CHAIN, name="x").subdatabase)
        assert want == got
        metrics = process_qp.evaluator.last_metrics
        assert metrics.worker_mode == "process"
        assert metrics.workers_used == 4

    def test_loop_matches_serial(self, database, process_qp):
        from repro.storage.serialize import subdatabase_to_dict
        serial = QueryProcessor(Universe(database))
        want = subdatabase_to_dict(
            serial.execute(self.LOOP, name="x").subdatabase)
        got = subdatabase_to_dict(
            process_qp.execute(self.LOOP, name="x").subdatabase)
        assert want == got

    def test_budget_cancellation_mid_partition(self, process_qp):
        """A max_rows trip in one worker must cancel the others and
        surface as the coordinator's own BudgetExceeded."""
        with pytest.raises(BudgetExceeded) as info:
            process_qp.execute(self.CHAIN,
                               budget=QueryBudget(max_rows=10))
        assert info.value.verdict == "max_rows"

    def test_deadline_cancellation(self, process_qp):
        with pytest.raises(BudgetExceeded) as info:
            process_qp.execute(self.CHAIN,
                               budget=QueryBudget(deadline_ms=0.0001))
        assert info.value.verdict == "deadline"

    def test_worker_crash_recovers(self, process_qp):
        """An injected hard crash (os._exit in a worker) surfaces as
        WorkerCrashError; the pool is rebuilt and the next query
        succeeds; nothing leaks."""
        process_qp.evaluator._process_executor.inject_crash = True
        with pytest.raises(parallel.WorkerCrashError):
            process_qp.execute(self.CHAIN)
        result = process_qp.execute(self.CHAIN)  # recovered pool
        assert result.subdatabase is not None
        assert process_qp.evaluator.last_metrics.worker_mode == "process"

    def test_write_invalidates_planes(self, database, process_qp):
        """An INSERT between queries bumps the version vector: the next
        dispatch re-exports fresh planes instead of reading stale
        ones, and both answers stay correct."""
        from repro.storage.serialize import subdatabase_to_dict
        before = process_qp.execute(self.CHAIN, name="x").subdatabase
        teacher = database.insert("Teacher", name="Fresh",
                                  **{"SS#": "999"})
        section = next(iter(database.extent("Section")))
        database.associate(teacher, "teaches", section)
        try:
            serial = QueryProcessor(Universe(database))
            want = subdatabase_to_dict(
                serial.execute(self.CHAIN, name="y").subdatabase)
            got = subdatabase_to_dict(
                process_qp.execute(self.CHAIN, name="y").subdatabase)
            assert want == got
            assert got != subdatabase_to_dict(before)
        finally:
            database.dissociate(teacher, "teaches", section)
            database.delete(teacher.oid)

    def test_close_releases_everything(self, database):
        qp = QueryProcessor(Universe(database), workers=4,
                            worker_mode="process")
        qp.evaluator.min_parallel_rows = 1
        qp.execute(self.CHAIN)
        qp.close()
        assert planes.live_planes() == []
