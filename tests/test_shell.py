"""Tests for the interactive shell's command interpreter."""

import io

import pytest

from repro.rules.engine import RuleEngine
from repro.shell import Shell, build_engine
from repro.university import build_paper_database, build_sdb


@pytest.fixture
def shell():
    data = build_paper_database()
    engine = RuleEngine(data.db)
    engine.universe.register(build_sdb(data))
    out = io.StringIO()
    return Shell(engine, out=out), out


def output(out):
    return out.getvalue()


class TestStatements:
    def test_query(self, shell):
        sh, out = shell
        sh.handle("context SDB:Teacher select name display")
        assert "Smith" in output(out)

    def test_rule_then_query(self, shell):
        sh, out = shell
        sh.handle("if context Teacher * Section * Course "
                  "then TC (Teacher, Course)")
        assert "derives 'TC'" in output(out)
        sh.handle("context TC:Teacher select name display")
        assert "Jones" in output(out)

    def test_continuation_lines(self, shell):
        sh, out = shell
        sh.handle("context SDB:Teacher \\")
        assert sh.pending
        sh.handle("select name display")
        assert not sh.pending
        assert "Smith" in output(out)

    def test_error_reported_not_raised(self, shell):
        sh, out = shell
        sh.handle("context Nothing * Here")
        assert "error:" in output(out)

    def test_unrecognized_input_hint(self, shell):
        sh, out = shell
        sh.handle("hello world")
        assert "\\help" in output(out)

    def test_blank_line_ignored(self, shell):
        sh, out = shell
        assert sh.handle("   ")
        assert output(out) == ""


class TestMetaCommands:
    def test_help(self, shell):
        sh, out = shell
        sh.handle("\\help")
        assert "\\schema" in output(out)

    def test_schema(self, shell):
        sh, out = shell
        sh.handle("\\schema")
        assert "Teacher" in output(out)

    def test_class(self, shell):
        sh, out = shell
        sh.handle("\\class TA")
        text = output(out)
        assert "superclasses" in text
        assert "GPA" in text

    def test_class_usage(self, shell):
        sh, out = shell
        sh.handle("\\class")
        assert "usage" in output(out)

    def test_subdbs_and_subdb(self, shell):
        sh, out = shell
        sh.handle("\\subdbs")
        assert "SDB" in output(out)
        sh.handle("\\subdb SDB")
        assert "patterns (7)" in output(out)

    def test_rules_listing(self, shell):
        sh, out = shell
        sh.handle("\\rules")
        assert "(no rules)" in output(out)
        sh.handle("if context Teacher * Section then TS (Teacher)")
        sh.handle("\\rules")
        assert "then TS" in output(out)

    def test_explain(self, shell):
        sh, out = shell
        sh.handle("if context Teacher * Section then TS (Teacher)")
        sh.handle("\\explain context TS:Teacher select name")
        assert "derivation order" in output(out)

    def test_stats(self, shell):
        sh, out = shell
        sh.handle("\\stats")
        assert "queries:" in output(out)
        assert "objects:" in output(out)

    def test_save(self, shell, tmp_path):
        sh, out = shell
        path = tmp_path / "session.json"
        sh.handle(f"\\save {path}")
        assert path.exists()
        assert "saved" in output(out)

    def test_quit(self, shell):
        sh, out = shell
        assert sh.handle("\\quit") is False

    def test_unknown_command(self, shell):
        sh, out = shell
        sh.handle("\\frobnicate")
        assert "unknown command" in output(out)


class TestBuildEngine:
    def test_default_is_paper_database(self):
        engine = build_engine([])
        assert engine.universe.has_subdb("SDB")

    def test_empty(self):
        engine = build_engine(["--empty"])
        assert len(engine.db) == 0

    def test_session_roundtrip(self, tmp_path):
        from repro.storage import save_session
        engine = build_engine([])
        engine.add_rule("if context Teacher * Section then TS (Teacher)")
        path = tmp_path / "s.json"
        save_session(engine, path)
        restored = build_engine(["--session", str(path)])
        assert [r.target for r in restored.rules] == ["TS"]


class TestMetricsCommand:
    def test_metrics_before_any_query(self, shell):
        sh, out = shell
        sh.handle("\\metrics")
        assert "no query" in output(out)

    def test_metrics_after_query(self, shell):
        sh, out = shell
        sh.handle("context SDB:Teacher * SDB:Section select name display")
        sh.handle("\\metrics")
        text = output(out)
        assert "edge_traversals:" in text
        assert "patterns_out: 3" in text


class TestCacheCommand:
    def test_cache_reports_off_by_default(self, shell):
        sh, out = shell
        sh.handle("\\cache")
        assert "cache is off" in output(out)

    def test_cache_on_hit_stats_clear_off(self, shell):
        sh, out = shell
        sh.handle("\\cache on")
        assert "cache on" in output(out)
        sh.handle("context Teacher * Section * Course")
        sh.handle("context Teacher * Section * Course")
        sh.handle("\\cache")
        assert "cache is on — " in output(out)
        sh.handle("\\metrics")
        assert "cache_hits: 1" in output(out)
        sh.handle("\\cache stats")
        text = output(out)
        assert "hits: 1" in text
        assert "misses: 1" in text
        sh.handle("\\cache clear")
        assert "cache cleared" in output(out)
        sh.handle("\\cache off")
        sh.handle("\\cache")
        assert "cache is off" in output(out)

    def test_cache_off_discards_entries(self, shell):
        sh, out = shell
        sh.handle("\\cache on")
        sh.handle("context Teacher * Section")
        sh.handle("\\cache off")
        sh.handle("\\cache stats")
        assert "entries: 0" in output(out)

    def test_cache_invalidated_by_write_stays_correct(self, shell):
        sh, out = shell
        sh.handle("\\cache on")
        sh.handle("context Teacher * Section select name display")
        sh.engine.db.insert("Teacher", "t_shell",
                            **{"SS#": "999-11-2222", "name": "Newman"})
        sh.handle("context Teacher * Section select name display")
        sh.handle("\\metrics")
        assert "cache_hits: 0" in output(out)

    def test_cache_already_toggled(self, shell):
        sh, out = shell
        sh.handle("\\cache off")
        assert "cache already off" in output(out)
        sh.handle("\\cache on")
        sh.handle("\\cache on")
        assert "cache already on" in output(out)

    def test_cache_usage_hint(self, shell):
        sh, out = shell
        sh.handle("\\cache frobnicate")
        assert "usage: \\cache" in output(out)

    def test_help_lists_cache(self, shell):
        sh, out = shell
        sh.handle("\\help")
        assert "\\cache" in output(out)


class TestTraceCommand:
    @pytest.fixture(autouse=True)
    def _no_tracer_leak(self):
        from repro import obs
        yield
        obs.uninstall()

    def test_trace_reports_off_by_default(self, shell):
        sh, out = shell
        sh.handle("\\trace")
        assert "tracing is off" in output(out)

    def test_trace_on_show_save_off(self, shell, tmp_path):
        import json
        sh, out = shell
        sh.handle("\\trace show")
        assert "no trace recorded" in output(out)
        sh.handle("\\trace on")
        assert "tracing on" in output(out)
        sh.handle("context Teacher * Section * Course")
        sh.handle("\\trace")
        assert "tracing is on — 1 trace(s) recorded" in output(out)
        sh.handle("\\trace show")
        text = output(out)
        assert "engine-query" in text
        assert "join-step" in text
        path = tmp_path / "trace.json"
        sh.handle(f"\\trace save {path}")
        assert "chrome trace saved" in output(out)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        sh.handle("\\trace off")
        sh.handle("\\trace")
        assert "tracing is off" in output(out)

    def test_trace_save_without_traces(self, shell):
        sh, out = shell
        sh.handle("\\trace on")
        sh.handle("\\trace save /tmp/never.json")
        assert "no traces to save" in output(out)

    def test_trace_usage_hint(self, shell):
        sh, out = shell
        sh.handle("\\trace frobnicate")
        assert "usage: \\trace" in output(out)

    def test_budget_trip_prints_trace_hint(self, shell):
        sh, out = shell
        sh.handle("\\trace on")
        sh.handle("\\budget max_rows=1")
        sh.handle("context Teacher * Section * Course")
        text = output(out)
        assert "partial trace" in text
        assert "\\trace show" in text

    def test_metrics_show_trace_id(self, shell):
        sh, out = shell
        sh.handle("\\trace on")
        sh.handle("context Teacher * Section")
        sh.handle("\\metrics")
        assert "trace_id: 1" in output(out)


class TestWalCommandErrorPaths:
    """\\wal / \\checkpoint / \\restore against missing, stateful and
    torn backends — every path answers with a message, never a
    traceback."""

    def test_wal_status_without_backend(self, shell):
        sh, out = shell
        sh.handle("\\wal")
        assert "no storage backend attached" in output(out)

    def test_wal_sync_and_compact_without_backend(self, shell):
        sh, out = shell
        sh.handle("\\wal sync")
        sh.handle("\\wal compact")
        assert output(out).count("no storage backend attached") == 2

    def test_wal_open_usage(self, shell):
        sh, out = shell
        sh.handle("\\wal open")
        assert "usage: \\wal open" in output(out)
        assert sh.backend is None

    def test_wal_unknown_subcommand(self, shell):
        sh, out = shell
        sh.handle("\\wal frobnicate")
        assert "usage: \\wal" in output(out)

    def test_wal_open_unknown_kind_reported(self, shell, tmp_path):
        sh, out = shell
        sh.handle(f"\\wal open {tmp_path / 'store'} parquet")
        assert "error:" in output(out)
        assert "unknown storage backend" in output(out)
        assert sh.backend is None

    def test_checkpoint_without_backend(self, shell):
        sh, out = shell
        sh.handle("\\checkpoint")
        assert "no storage backend attached" in output(out)

    def test_restore_without_backend(self, shell):
        sh, out = shell
        sh.handle("\\restore")
        assert "no storage backend attached" in output(out)

    def test_restore_bad_seq_argument(self, shell, tmp_path):
        sh, out = shell
        sh.handle(f"\\wal open {tmp_path / 'store'}")
        sh.handle("\\restore not-a-number")
        assert "usage: \\restore" in output(out)
        sh.handle("\\quit")

    def test_wal_open_refuses_stateful_directory(self, shell, tmp_path):
        from repro.storage import open_backend
        backend = open_backend(tmp_path / "store", "json")
        engine = RuleEngine(build_paper_database().db)
        backend.attach(engine)
        engine.db.insert("Teacher", name="X", **{"SS#": "1"})
        backend.close()

        sh, out = shell
        sh.handle(f"\\wal open {tmp_path / 'store'}")
        assert "already holds a session" in output(out)
        assert sh.backend is None  # refused, nothing attached

    def test_wal_open_reports_torn_tail(self, shell, tmp_path):
        """A fresh directory whose WAL carries torn trailing bytes (a
        crash mid-append) attaches fine, with the truncation noted."""
        store = tmp_path / "store"
        store.mkdir()
        (store / "wal.jsonl").write_bytes(b'{"half": "a reco')
        sh, out = shell
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            sh.handle(f"\\wal open {store}")
        text = output(out)
        assert "backend attached" in text
        assert "torn trailing bytes were discarded" in text
        sh.handle("\\quit")

    def test_double_open_refused(self, shell, tmp_path):
        sh, out = shell
        sh.handle(f"\\wal open {tmp_path / 'one'}")
        sh.handle(f"\\wal open {tmp_path / 'two'}")
        assert "already attached" in output(out)
        sh.handle("\\quit")


class TestServeCommand:
    def test_status_when_not_serving(self, shell):
        sh, out = shell
        sh.handle("\\serve")
        assert "not serving" in output(out)

    def test_stop_when_not_serving(self, shell):
        sh, out = shell
        sh.handle("\\serve stop")
        assert "not serving" in output(out)

    def test_bad_port_usage(self, shell):
        sh, out = shell
        sh.handle("\\serve start not-a-port")
        assert "usage: \\serve start" in output(out)

    def test_bad_limit_usage(self, shell):
        sh, out = shell
        sh.handle("\\serve start 0 limit=banana")
        assert "usage: \\serve start" in output(out)

    def test_serve_start_query_stop(self, shell):
        from repro.service import ServiceClient
        sh, out = shell
        sh.handle("\\serve start 127.0.0.1:0 limit=2")
        assert "serving on 127.0.0.1:" in output(out)
        host, port = sh._service.address
        with ServiceClient(host, port) as client:
            result = client.query("context Teacher * Section * Course")
            assert result["patterns"] > 0
        sh.handle("\\serve status")
        assert "request(s)" in output(out)
        sh.handle("\\serve start 0")
        assert "already serving" in output(out)
        sh.handle("\\serve stop")
        assert "service stopped" in output(out)
        assert sh._service is None

    def test_serve_start_port_in_use_reports_error(self, shell):
        import socket
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        try:
            sh, out = shell
            sh.handle(f"\\serve start 127.0.0.1:{port}")
            assert "error:" in output(out)
            assert sh._service is None
        finally:
            blocker.close()

    def test_quit_stops_service(self, shell):
        sh, out = shell
        sh.handle("\\serve start 127.0.0.1:0")
        service = sh._service
        assert not sh.handle("\\quit")
        assert sh._service is None
        assert service._thread is None  # fully stopped
