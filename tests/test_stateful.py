"""Stateful soak test: a hypothesis rule-based state machine drives a
live deductive database — inserts, deletes, links, unlinks, attribute
updates, queries — and checks the global invariants after every step:

* every maintained (pre-evaluated, incrementally-maintained) result
  equals a from-scratch derivation;
* the constraint audit stays clean;
* backward-chained query answers agree with direct derivation.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.model.database import Database
from repro.model.dclass import INTEGER, STRING
from repro.model.schema import Schema
from repro.model.validation import check_database
from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine


def build_schema() -> Schema:
    schema = Schema("soak")
    schema.add_eclass("Team")
    schema.add_eclass("Member")
    schema.add_eclass("Lead")
    schema.add_subclass("Member", "Lead")
    schema.add_attribute("Team", "name", STRING)
    schema.add_attribute("Member", "level", INTEGER)
    schema.add_association("Team", "Member", name="members", many=True)
    return schema


class DeductiveSoak(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(build_schema())
        self.engine = RuleEngine(self.db, controller="incremental")
        self.engine.add_rule(
            "if context Team * Member [level >= 3] "
            "then Senior_staffing (Team, Member)",
            label="KB", mode=EvaluationMode.PRE_EVALUATED)
        self.engine.add_rule(
            "if context Senior_staffing:Team then Staffed_teams (Team)",
            label="KB2", mode=EvaluationMode.POST_EVALUATED)
        self.teams = []
        self.members = []
        self.engine.refresh()

    # -- actions ---------------------------------------------------------

    @rule(level=st.integers(0, 5))
    def add_member(self, level):
        self.members.append(self.db.insert("Member", level=level))

    @rule(level=st.integers(0, 5))
    def add_lead(self, level):
        self.members.append(self.db.insert("Lead", level=level))

    @rule()
    def add_team(self):
        self.teams.append(
            self.db.insert("Team", name=f"team{len(self.teams)}"))

    @rule(ti=st.integers(0, 9), mi=st.integers(0, 19))
    def toggle_link(self, ti, mi):
        if not self.teams or not self.members:
            return
        team = self.teams[ti % len(self.teams)]
        member = self.members[mi % len(self.members)]
        link = self.db.schema.resolve_link("Team", "Member").link
        if member.oid in self.db.linked(team.oid, link):
            self.db.dissociate(team, "members", member)
        else:
            self.db.associate(team, "members", member)

    @rule(mi=st.integers(0, 19), level=st.integers(0, 5))
    def change_level(self, mi, level):
        if not self.members:
            return
        member = self.members[mi % len(self.members)]
        self.db.set_attribute(member.oid, "level", level)

    @rule(mi=st.integers(0, 19))
    def remove_member(self, mi):
        if len(self.members) <= 1:
            return
        member = self.members.pop(mi % len(self.members))
        self.db.delete(member.oid)

    @rule()
    def run_query(self):
        result = self.engine.query(
            "context Staffed_teams:Team select name")
        direct = self.engine.derive("Staffed_teams", force=True)
        assert result.subdatabase.patterns == direct.patterns

    # -- invariants -------------------------------------------------------

    @invariant()
    def maintained_equals_fresh(self):
        maintained = self.engine.universe.get_subdb(
            "Senior_staffing").patterns
        fresh = self.engine.derive("Senior_staffing",
                                   force=True).patterns
        assert maintained == fresh

    @invariant()
    def audit_clean(self):
        assert check_database(self.db) == []


DeductiveSoak.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None)

TestDeductiveSoak = DeductiveSoak.TestCase
