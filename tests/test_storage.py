"""Unit tests for persistence: schema/database/subdatabase round-trips
and whole-session save/load."""

import json

import pytest

from repro.errors import DataError
from repro.model.dclass import DClass
from repro.model.schema import Schema
from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine
from repro.storage import (
    database_from_dict,
    database_to_dict,
    load_session,
    save_session,
    schema_from_dict,
    schema_to_dict,
    subdatabase_from_dict,
    subdatabase_to_dict,
)
from repro.storage.session import session_from_dict, session_to_dict
from repro.university import build_paper_database, build_sdb
from repro.university.schema import build_university_schema


class TestSchemaRoundtrip:
    def test_university_roundtrip(self):
        original = build_university_schema()
        restored = schema_from_dict(schema_to_dict(original))
        assert restored.eclass_names == original.eclass_names
        assert [str(l) for l in restored.aggregations()] == \
            [str(l) for l in original.aggregations()]
        assert restored.generalizations() == original.generalizations()

    def test_document_is_json_serializable(self):
        doc = schema_to_dict(build_university_schema())
        json.dumps(doc)

    def test_check_predicate_recorded_as_warning(self):
        schema = Schema()
        schema.add_eclass("A")
        schema.add_attribute("A", "grade",
                             DClass("letter", str,
                                    check=lambda v: v in "ABC"))
        doc = schema_to_dict(schema)
        assert any("letter" in w for w in doc["warnings"])

    def test_restored_schema_resolves_links(self):
        restored = schema_from_dict(
            schema_to_dict(build_university_schema()))
        assert restored.resolve_link("Teacher",
                                     "Section").link.name == "teaches"
        from repro.errors import AmbiguousPathError
        with pytest.raises(AmbiguousPathError):
            restored.resolve_link("TA", "Section")


class TestDatabaseRoundtrip:
    def test_entities_and_links_roundtrip(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        assert restored.stats()["objects"] == data.db.stats()["objects"]
        assert restored.stats()["links"] == data.db.stats()["links"]

    def test_oid_values_preserved(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        t1 = data.oid("t1")
        assert restored.entity(t1)["name"] == "Smith"

    def test_labels_preserved(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        labels = {e.oid.label for e in restored.iter_entities()}
        assert "t1" in labels and "s5" in labels

    def test_new_inserts_do_not_collide_after_load(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        fresh = restored.insert("Teacher", name="New")
        assert fresh.oid.value > max(
            e.oid.value for e in data.db.iter_entities())

    def test_duplicate_oid_rejected(self):
        data = build_paper_database()
        doc = database_to_dict(data.db)
        doc["entities"][1]["oid"] = doc["entities"][0]["oid"]
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        with pytest.raises(DataError):
            database_from_dict(doc, schema)

    def test_dangling_link_rejected(self):
        data = build_paper_database()
        doc = database_to_dict(data.db)
        doc["links"][0]["pairs"].append([999999, 999998])
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        with pytest.raises(DataError):
            database_from_dict(doc, schema)


class TestSubdatabaseRoundtrip:
    def test_sdb_roundtrip(self):
        data = build_paper_database()
        sdb = build_sdb(data)
        restored = subdatabase_from_dict(subdatabase_to_dict(sdb),
                                         data.db)
        assert restored.slot_names == sdb.slot_names
        assert restored.patterns == sdb.patterns
        assert restored.intension.edge_between(0, 1).label == "teaches"

    def test_derived_info_roundtrip(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Teacher * Section * Course "
            "then TC (Teacher [SS#, degree], Course)")
        subdb = engine.derive("TC")
        restored = subdatabase_from_dict(subdatabase_to_dict(subdb),
                                         data.db)
        assert restored.derived_info == subdb.derived_info

    def test_unknown_oid_rejected(self):
        data = build_paper_database()
        doc = subdatabase_to_dict(build_sdb(data))
        doc["patterns"][0][0] = 424242
        with pytest.raises(DataError):
            subdatabase_from_dict(doc, data.db)


class TestSessionRoundtrip:
    def _engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Department[name = 'CIS'] * Course * Section * "
            "Student where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)", label="R2",
            mode=EvaluationMode.PRE_EVALUATED)
        engine.add_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)", label="R4")
        engine.refresh()
        return data, engine

    def test_roundtrip_preserves_query_results(self, tmp_path):
        data, engine = self._engine()
        before = engine.query(
            "context May_teach:TA select name display").output
        path = save_session(engine, tmp_path / "session.json")
        restored = load_session(path)
        after = restored.query(
            "context May_teach:TA select name display").output
        assert before == after

    def test_rules_and_modes_restored(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert [r.label for r in restored.rules] == ["R2", "R4"]
        assert restored.controller.mode_of("Suggest_offer") is \
            EvaluationMode.PRE_EVALUATED

    def test_materialized_results_warm_after_load(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert restored.universe.has_subdb("Suggest_offer")
        restored.query("context Suggest_offer:Course select title")
        # No derivation needed: the stored copy was loaded warm.
        assert restored.stats.derivations["Suggest_offer"] == 0

    def test_restored_engine_maintains_on_update(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        # Enrolling 50 students into a section of c4 makes it suggested.
        db = restored.db
        c4 = data.oid("c4")
        s5 = next(e for e in db.iter_entities()
                  if e.oid.label == "s5")
        with db.batch():
            for i in range(50):
                student = db.insert("Student", name=f"x{i}",
                                    **{"SS#": f"x{i}"})
                db.associate(student, "enrolled", s5)
        result = restored.query(
            "context Suggest_offer:Course select title display")
        assert "Expert Systems" in result.output

    def test_skip_materialized(self, tmp_path):
        data, engine = self._engine()
        path = save_session(engine, tmp_path / "s.json",
                            include_materialized=False)
        restored = load_session(path)
        assert not restored.universe.has_subdb("Suggest_offer")
        # Still derivable on demand.
        restored.query("context Suggest_offer:Course select title")
        assert restored.stats.derivations["Suggest_offer"] == 1

    def test_version_check(self):
        data, engine = self._engine()
        doc = session_to_dict(engine)
        doc["format_version"] = 999
        with pytest.raises(DataError):
            session_from_dict(doc)

    def test_rule_oriented_controller_roundtrip(self, tmp_path):
        from repro.rules.control import RuleChainingMode
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="rule")
        engine.add_rule("if context Teacher * Section then REa "
                        "(Teacher, Section)", label="Ra",
                        mode=RuleChainingMode.BACKWARD)
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert restored.controller.mode_of("REa") is \
            RuleChainingMode.BACKWARD


class TestNewAssociationKindsRoundtrip:
    def test_all_five_kinds_roundtrip(self):
        schema = Schema("factory")
        for cls in ["Machine", "Component", "Operator", "Shift",
                    "Assignment", "Slot"]:
            schema.add_eclass(cls)
        from repro.model.dclass import STRING
        schema.add_attribute("Machine", "name", STRING)
        schema.add_composition("Machine", "Component", name="parts")
        schema.declare_interaction("Assignment", ["Operator", "Machine"])
        schema.declare_crossproduct("Slot", ["Machine", "Shift"])
        schema.add_subclass("Machine", "Slot") if False else None
        restored = schema_from_dict(schema_to_dict(schema))
        from repro.model.associations import AssociationKind
        parts = next(l for l in restored.aggregations()
                     if l.name == "parts")
        assert parts.kind is AssociationKind.COMPOSITION
        assert restored.interaction_of("Assignment").participants == \
            ("Operator", "Machine")
        assert restored.crossproduct_of("Slot").components == \
            ("Machine", "Shift")

    def test_restored_semantics_enforced(self):
        from repro.errors import ConstraintViolationError
        from repro.model.database import Database
        schema = Schema("factory")
        schema.add_eclass("Machine")
        schema.add_eclass("Component")
        schema.add_composition("Machine", "Component", name="parts")
        restored = schema_from_dict(schema_to_dict(schema))
        db = Database(restored)
        m1, m2 = db.insert("Machine"), db.insert("Machine")
        part = db.insert("Component")
        db.associate(m1, "parts", part)
        with pytest.raises(ConstraintViolationError):
            db.associate(m2, "parts", part)


class TestRoundtripProperties:
    """Persistence fidelity over generated databases (hypothesis)."""

    def test_generated_database_roundtrips_exactly(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.university import GeneratorConfig, generate_university

        @settings(max_examples=8, deadline=None)
        @given(seed=st.integers(0, 10_000))
        def run(seed):
            data = generate_university(GeneratorConfig(
                departments=2, courses=6, sections_per_course=1,
                teachers=4, students=15, grads=4, tas=1, faculty=2,
                seed=seed))
            schema = schema_from_dict(schema_to_dict(data.db.schema))
            restored = database_from_dict(database_to_dict(data.db),
                                          schema)
            assert restored.stats()["objects"] == \
                data.db.stats()["objects"]
            assert restored.stats()["links"] == data.db.stats()["links"]
            for link in data.db.schema.aggregations():
                if link.target in data.db.schema.dclass_names:
                    continue
                original = {(a.value, b.value)
                            for a, b in data.db.link_pairs(link)}
                mirrored = next(
                    l for l in restored.schema.aggregations()
                    if l.key == link.key)
                copied = {(a.value, b.value)
                          for a, b in restored.link_pairs(mirrored)}
                assert original == copied

        run()

    def test_double_roundtrip_is_stable(self):
        data = build_paper_database()
        doc1 = database_to_dict(data.db)
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(doc1, schema)
        doc2 = database_to_dict(restored)
        assert doc1["entities"] == doc2["entities"]
        assert doc1["links"] == doc2["links"]
