"""Unit tests for persistence: schema/database/subdatabase round-trips
and whole-session save/load."""

import json
import os

import pytest

from repro.errors import DataError
from repro.model.dclass import DClass
from repro.model.schema import Schema
from repro.rules.control import EvaluationMode
from repro.rules.engine import RuleEngine
from repro.storage import (
    database_from_dict,
    database_to_dict,
    load_session,
    save_session,
    schema_from_dict,
    schema_to_dict,
    subdatabase_from_dict,
    subdatabase_to_dict,
)
from repro.storage.session import session_from_dict, session_to_dict
from repro.university import build_paper_database, build_sdb
from repro.university.schema import build_university_schema


class TestSchemaRoundtrip:
    def test_university_roundtrip(self):
        original = build_university_schema()
        restored = schema_from_dict(schema_to_dict(original))
        assert restored.eclass_names == original.eclass_names
        assert [str(l) for l in restored.aggregations()] == \
            [str(l) for l in original.aggregations()]
        assert restored.generalizations() == original.generalizations()

    def test_document_is_json_serializable(self):
        doc = schema_to_dict(build_university_schema())
        json.dumps(doc)

    def test_check_predicate_recorded_as_warning(self):
        schema = Schema()
        schema.add_eclass("A")
        schema.add_attribute("A", "grade",
                             DClass("letter", str,
                                    check=lambda v: v in "ABC"))
        doc = schema_to_dict(schema)
        assert any("letter" in w for w in doc["warnings"])

    def test_dropped_check_warning_resurfaces_on_load(self):
        from repro.storage import StoredSchemaWarning
        schema = Schema()
        schema.add_eclass("A")
        schema.add_attribute("A", "grade",
                             DClass("letter", str,
                                    check=lambda v: v in "ABC"))
        doc = schema_to_dict(schema)
        with pytest.warns(StoredSchemaWarning, match="letter"):
            schema_from_dict(doc)

    def test_clean_schema_loads_without_warnings(self):
        import warnings
        doc = schema_to_dict(build_university_schema())
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            schema_from_dict(doc)

    def test_restored_schema_resolves_links(self):
        restored = schema_from_dict(
            schema_to_dict(build_university_schema()))
        assert restored.resolve_link("Teacher",
                                     "Section").link.name == "teaches"
        from repro.errors import AmbiguousPathError
        with pytest.raises(AmbiguousPathError):
            restored.resolve_link("TA", "Section")


class TestDatabaseRoundtrip:
    def test_entities_and_links_roundtrip(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        assert restored.stats()["objects"] == data.db.stats()["objects"]
        assert restored.stats()["links"] == data.db.stats()["links"]

    def test_oid_values_preserved(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        t1 = data.oid("t1")
        assert restored.entity(t1)["name"] == "Smith"

    def test_labels_preserved(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        labels = {e.oid.label for e in restored.iter_entities()}
        assert "t1" in labels and "s5" in labels

    def test_new_inserts_do_not_collide_after_load(self):
        data = build_paper_database()
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(database_to_dict(data.db), schema)
        fresh = restored.insert("Teacher", name="New")
        assert fresh.oid.value > max(
            e.oid.value for e in data.db.iter_entities())

    def test_entities_born_with_final_oids(self):
        """Load goes through the allocator pre-seeding path: the insert
        events listeners observe during a load already carry the stored
        (final) OID values and labels — no post-hoc rewriting that
        would strand listener-built structures on provisional keys."""
        from repro.model.database import Database, UpdateKind
        data = build_paper_database()
        doc = database_to_dict(data.db)
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        seen = {}
        original_insert = Database.insert

        def tracking_insert(self, cls, label=None, **attrs):
            if not self._listeners:
                self.add_listener(
                    lambda e: seen.update(
                        {o.value: o.label for o in e.oids})
                    if e.kind is UpdateKind.INSERT else None)
            return original_insert(self, cls, label, **attrs)

        Database.insert = tracking_insert
        try:
            database_from_dict(doc, schema)
        finally:
            Database.insert = original_insert
        expected = {e["oid"]: e.get("label") for e in doc["entities"]}
        assert seen == expected

    def test_version_vector_persisted_and_restored(self):
        data = build_paper_database()
        db = data.db
        # Touch one class so its watermark is distinctive.
        t1 = data.oid("t1")
        db.set_attribute(t1, "name", "Smith'")
        doc = database_to_dict(db)
        assert doc["version_state"]["class_versions"]["Teacher"] == \
            db.class_version("Teacher")
        schema = schema_from_dict(schema_to_dict(db.schema))
        restored = database_from_dict(doc, schema)
        assert restored.version == db.version
        assert restored.schema_version == db.schema_version
        assert restored.version_state() == db.version_state()
        assert restored.version_vector(["Teacher", "Course"]) == \
            db.version_vector(["Teacher", "Course"])

    def test_legacy_document_without_version_state_loads(self):
        data = build_paper_database()
        doc = database_to_dict(data.db)
        del doc["version_state"]
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(doc, schema)
        assert restored.stats()["objects"] == data.db.stats()["objects"]

    def test_duplicate_oid_rejected(self):
        data = build_paper_database()
        doc = database_to_dict(data.db)
        doc["entities"][1]["oid"] = doc["entities"][0]["oid"]
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        with pytest.raises(DataError):
            database_from_dict(doc, schema)

    def test_dangling_link_rejected(self):
        data = build_paper_database()
        doc = database_to_dict(data.db)
        doc["links"][0]["pairs"].append([999999, 999998])
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        with pytest.raises(DataError):
            database_from_dict(doc, schema)


class TestSubdatabaseRoundtrip:
    def test_sdb_roundtrip(self):
        data = build_paper_database()
        sdb = build_sdb(data)
        restored = subdatabase_from_dict(subdatabase_to_dict(sdb),
                                         data.db)
        assert restored.slot_names == sdb.slot_names
        assert restored.patterns == sdb.patterns
        assert restored.intension.edge_between(0, 1).label == "teaches"

    def test_derived_info_roundtrip(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Teacher * Section * Course "
            "then TC (Teacher [SS#, degree], Course)")
        subdb = engine.derive("TC")
        restored = subdatabase_from_dict(subdatabase_to_dict(subdb),
                                         data.db)
        assert restored.derived_info == subdb.derived_info

    def test_unknown_oid_rejected(self):
        data = build_paper_database()
        doc = subdatabase_to_dict(build_sdb(data))
        doc["patterns"][0][0] = 424242
        with pytest.raises(DataError):
            subdatabase_from_dict(doc, data.db)


class TestSessionRoundtrip:
    def _engine(self):
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Department[name = 'CIS'] * Course * Section * "
            "Student where COUNT(Student by Course) > 39 "
            "then Suggest_offer (Course)", label="R2",
            mode=EvaluationMode.PRE_EVALUATED)
        engine.add_rule(
            "if context TA * Teacher * Section * Suggest_offer:Course "
            "then May_teach (TA, Course)", label="R4")
        engine.refresh()
        return data, engine

    def test_roundtrip_preserves_query_results(self, tmp_path):
        data, engine = self._engine()
        before = engine.query(
            "context May_teach:TA select name display").output
        path = save_session(engine, tmp_path / "session.json")
        restored = load_session(path)
        after = restored.query(
            "context May_teach:TA select name display").output
        assert before == after

    def test_rules_and_modes_restored(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert [r.label for r in restored.rules] == ["R2", "R4"]
        assert restored.controller.mode_of("Suggest_offer") is \
            EvaluationMode.PRE_EVALUATED

    def test_materialized_results_warm_after_load(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert restored.universe.has_subdb("Suggest_offer")
        restored.query("context Suggest_offer:Course select title")
        # No derivation needed: the stored copy was loaded warm.
        assert restored.stats.derivations["Suggest_offer"] == 0

    def test_restored_engine_maintains_on_update(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        # Enrolling 50 students into a section of c4 makes it suggested.
        db = restored.db
        c4 = data.oid("c4")
        s5 = next(e for e in db.iter_entities()
                  if e.oid.label == "s5")
        with db.batch():
            for i in range(50):
                student = db.insert("Student", name=f"x{i}",
                                    **{"SS#": f"x{i}"})
                db.associate(student, "enrolled", s5)
        result = restored.query(
            "context Suggest_offer:Course select title display")
        assert "Expert Systems" in result.output

    def test_skip_materialized(self, tmp_path):
        data, engine = self._engine()
        path = save_session(engine, tmp_path / "s.json",
                            include_materialized=False)
        restored = load_session(path)
        assert not restored.universe.has_subdb("Suggest_offer")
        # Still derivable on demand.
        restored.query("context Suggest_offer:Course select title")
        assert restored.stats.derivations["Suggest_offer"] == 1

    def test_save_is_atomic_on_crash(self, tmp_path, monkeypatch):
        """A crash mid-save must never destroy the previous copy: the
        document goes to a temp sibling and is renamed into place."""
        data, engine = self._engine()
        path = tmp_path / "session.json"
        save_session(engine, path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        engine.db.insert("Teacher", name="Doomed", **{"SS#": "x"})
        with pytest.raises(OSError):
            save_session(engine, path)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old copy fully intact
        assert not list(tmp_path.glob("*.tmp"))  # no litter either

    def test_save_load_save_byte_identity(self, tmp_path):
        data, engine = self._engine()
        first = save_session(engine, tmp_path / "a.json").read_bytes()
        second = save_session(load_session(tmp_path / "a.json"),
                              tmp_path / "b.json").read_bytes()
        assert first == second

    def test_version_vector_survives_session_roundtrip(self, tmp_path):
        data, engine = self._engine()
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert restored.db.version_state() == engine.db.version_state()

    def test_version_check(self):
        data, engine = self._engine()
        doc = session_to_dict(engine)
        doc["format_version"] = 999
        with pytest.raises(DataError):
            session_from_dict(doc)

    def test_rule_oriented_controller_roundtrip(self, tmp_path):
        from repro.rules.control import RuleChainingMode
        data = build_paper_database()
        engine = RuleEngine(data.db, controller="rule")
        engine.add_rule("if context Teacher * Section then REa "
                        "(Teacher, Section)", label="Ra",
                        mode=RuleChainingMode.BACKWARD)
        restored = load_session(save_session(engine,
                                             tmp_path / "s.json"))
        assert restored.controller.mode_of("REa") is \
            RuleChainingMode.BACKWARD


class TestAtomicWritePrimitive:
    """`storage/atomic.py` must never leave temp siblings behind —
    neither on success nor on an injected failure at any step."""

    def test_success_leaves_no_temp_siblings(self, tmp_path):
        from repro.storage.atomic import atomic_write_text

        path = atomic_write_text(tmp_path / "doc.json", '{"a": 1}')
        assert path.read_text() == '{"a": 1}'
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_overwrite_leaves_no_temp_siblings(self, tmp_path):
        from repro.storage.atomic import atomic_write_text

        atomic_write_text(tmp_path / "doc.json", "old")
        atomic_write_text(tmp_path / "doc.json", "new")
        assert (tmp_path / "doc.json").read_text() == "new"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_failed_replace_cleans_temp_and_keeps_old(
            self, tmp_path, monkeypatch):
        from repro.storage.atomic import atomic_write_text

        atomic_write_text(tmp_path / "doc.json", "old")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(tmp_path / "doc.json", "new")
        monkeypatch.undo()
        assert (tmp_path / "doc.json").read_text() == "old"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_failed_fsync_cleans_temp(self, tmp_path, monkeypatch):
        from repro.storage.atomic import atomic_write_text

        def exploding_fsync(fd):
            raise OSError("simulated fsync failure")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="simulated fsync"):
            atomic_write_text(tmp_path / "doc.json", "data")
        monkeypatch.undo()
        # Nothing materialized at all: no destination, no temp litter.
        assert list(tmp_path.iterdir()) == []


class TestNewAssociationKindsRoundtrip:
    def test_all_five_kinds_roundtrip(self):
        schema = Schema("factory")
        for cls in ["Machine", "Component", "Operator", "Shift",
                    "Assignment", "Slot"]:
            schema.add_eclass(cls)
        from repro.model.dclass import STRING
        schema.add_attribute("Machine", "name", STRING)
        schema.add_composition("Machine", "Component", name="parts")
        schema.declare_interaction("Assignment", ["Operator", "Machine"])
        schema.declare_crossproduct("Slot", ["Machine", "Shift"])
        schema.add_subclass("Machine", "Slot") if False else None
        restored = schema_from_dict(schema_to_dict(schema))
        from repro.model.associations import AssociationKind
        parts = next(l for l in restored.aggregations()
                     if l.name == "parts")
        assert parts.kind is AssociationKind.COMPOSITION
        assert restored.interaction_of("Assignment").participants == \
            ("Operator", "Machine")
        assert restored.crossproduct_of("Slot").components == \
            ("Machine", "Shift")

    def test_restored_semantics_enforced(self):
        from repro.errors import ConstraintViolationError
        from repro.model.database import Database
        schema = Schema("factory")
        schema.add_eclass("Machine")
        schema.add_eclass("Component")
        schema.add_composition("Machine", "Component", name="parts")
        restored = schema_from_dict(schema_to_dict(schema))
        db = Database(restored)
        m1, m2 = db.insert("Machine"), db.insert("Machine")
        part = db.insert("Component")
        db.associate(m1, "parts", part)
        with pytest.raises(ConstraintViolationError):
            db.associate(m2, "parts", part)


class TestRoundtripProperties:
    """Persistence fidelity over generated databases (hypothesis)."""

    def test_generated_database_roundtrips_exactly(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.university import GeneratorConfig, generate_university

        @settings(max_examples=8, deadline=None)
        @given(seed=st.integers(0, 10_000))
        def run(seed):
            data = generate_university(GeneratorConfig(
                departments=2, courses=6, sections_per_course=1,
                teachers=4, students=15, grads=4, tas=1, faculty=2,
                seed=seed))
            schema = schema_from_dict(schema_to_dict(data.db.schema))
            restored = database_from_dict(database_to_dict(data.db),
                                          schema)
            assert restored.stats()["objects"] == \
                data.db.stats()["objects"]
            assert restored.stats()["links"] == data.db.stats()["links"]
            for link in data.db.schema.aggregations():
                if link.target in data.db.schema.dclass_names:
                    continue
                original = {(a.value, b.value)
                            for a, b in data.db.link_pairs(link)}
                mirrored = next(
                    l for l in restored.schema.aggregations()
                    if l.key == link.key)
                copied = {(a.value, b.value)
                          for a, b in restored.link_pairs(mirrored)}
                assert original == copied

        run()

    def test_double_roundtrip_is_stable(self):
        data = build_paper_database()
        doc1 = database_to_dict(data.db)
        schema = schema_from_dict(schema_to_dict(data.db.schema))
        restored = database_from_dict(doc1, schema)
        doc2 = database_to_dict(restored)
        assert doc1["entities"] == doc2["entities"]
        assert doc1["links"] == doc2["links"]

    def test_generated_save_load_save_byte_identity(self, tmp_path):
        """Save→load→save is byte-identical over the differential
        generator — the whole document including the version vector."""
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.university import GeneratorConfig, generate_university

        @settings(max_examples=6, deadline=None)
        @given(seed=st.integers(0, 10_000))
        def run(seed):
            data = generate_university(GeneratorConfig(
                departments=2, courses=5, sections_per_course=1,
                teachers=4, students=12, grads=3, tas=1, faculty=2,
                seed=seed))
            engine = RuleEngine(data.db)
            engine.add_rule(
                "if context Teacher * Section * Course "
                "then TC (Teacher, Course)", label="TC")
            path_a = tmp_path / f"a{seed}.json"
            path_b = tmp_path / f"b{seed}.json"
            first = save_session(engine, path_a).read_bytes()
            second = save_session(load_session(path_a),
                                  path_b).read_bytes()
            assert first == second

        run()
