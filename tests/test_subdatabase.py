"""Unit tests for subdatabases: pattern types (Figure 3.1), extents,
projection, and the multi-rule union (merge)."""

import pytest

from repro.errors import OQLSemanticError
from repro.model.oid import OID
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern, PatternType
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.university import build_paper_database, build_sdb


def P(*values):
    return ExtensionalPattern([None if v is None else OID(v)
                               for v in values])


@pytest.fixture
def sdb():
    return build_sdb(build_paper_database())


class TestFigure31:
    def test_seven_patterns(self, sdb):
        assert len(sdb) == 7

    def test_five_pattern_types(self, sdb):
        expected = {
            PatternType(("Teacher", "Section", "Course")),
            PatternType(("Teacher", "Section")),
            PatternType(("Section", "Course")),
            PatternType(("Teacher",)),
            PatternType(("Course",)),
        }
        assert sdb.pattern_types() == expected

    def test_patterns_of_full_type(self, sdb):
        full = sdb.patterns_of_type(("Teacher", "Section", "Course"))
        labels = {tuple(repr(v) for v in p.values) for p in full}
        assert labels == {("t1", "s2", "c1"), ("t2", "s3", "c1"),
                          ("t2", "s3", "c2")}

    def test_extent_of_slot(self, sdb):
        teachers = {repr(o) for o in sdb.extent_of_slot("Teacher")}
        assert teachers == {"t1", "t2", "t3", "t4"}

    def test_pairs(self, sdb):
        pairs = {(repr(a), repr(b)) for a, b in sdb.pairs(0, 1)}
        assert pairs == {("t1", "s2"), ("t2", "s3"), ("t3", "s4")}

    def test_labels_match_figure(self, sdb):
        assert ("t3", "s4", None) in sdb.labels()
        assert (None, "s5", "c4") in sdb.labels()


class TestConstruction:
    def test_arity_mismatch_rejected(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        with pytest.raises(OQLSemanticError):
            Subdatabase("X", ip, [P(1)])


class TestExtentOfClass:
    def test_unions_alias_levels(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("A", None, 1)])
        sub = Subdatabase("X", ip, [P(1, 2), P(2, 3)])
        assert {o.value for o in sub.extent_of_class("A")} == {1, 2, 3}

    def test_unknown_class(self):
        ip = IntensionalPattern([ClassRef("A")])
        sub = Subdatabase("X", ip)
        with pytest.raises(OQLSemanticError):
            sub.extent_of_class("Z")


class TestProject:
    def test_projection_reorders_and_dedups(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B"),
                                 ClassRef("C")])
        sub = Subdatabase("X", ip, [P(1, 2, 3), P(1, 9, 3)])
        projected = sub.project(["C", "A"])
        assert projected.slot_names == ("C", "A")
        assert projected.patterns == {P(3, 1)}

    def test_projection_drops_all_null_rows(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        sub = Subdatabase("X", ip, [P(1, None), P(None, 2)])
        projected = sub.project(["B"])
        assert projected.patterns == {P(2)}


class TestMerge:
    def test_union_of_different_intensions(self):
        # The R4+R5 May_teach shape: (TA, Course) union (Grad, Course).
        left = Subdatabase(
            "May_teach",
            IntensionalPattern([ClassRef("TA"), ClassRef("Course")],
                               [Edge(0, 1, "derived", "May_teach")]),
            [P(10, 20)])
        right = Subdatabase(
            "May_teach",
            IntensionalPattern([ClassRef("Grad"), ClassRef("Course")],
                               [Edge(0, 1, "derived", "May_teach")]),
            [P(30, 21)])
        merged = left.merge(right)
        assert merged.slot_names == ("TA", "Course", "Grad")
        assert merged.patterns == {P(10, 20, None), P(None, 21, 30)}

    def test_union_same_intension_unions_patterns(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        left = Subdatabase("X", ip, [P(1, 2)])
        right = Subdatabase("X", ip, [P(3, 4)])
        assert left.merge(right).patterns == {P(1, 2), P(3, 4)}

    def test_union_applies_subsumption(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        left = Subdatabase("X", ip, [P(1, None)])
        right = Subdatabase("X", ip, [P(1, 2)])
        assert left.merge(right).patterns == {P(1, 2)}

    def test_conflicting_derived_info_reconciles_to_base(self):
        ip = IntensionalPattern([ClassRef("Course")])
        info_a = {"Course": DerivedClassInfo(
            ClassRef("Course", "X"), ClassRef("Course", "Suggest_offer"),
            ("title",))}
        info_b = {"Course": DerivedClassInfo(
            ClassRef("Course", "X"), ClassRef("Course"), ("c#",))}
        merged = Subdatabase("X", ip, [P(1)], info_a).merge(
            Subdatabase("X", ip, [P(2)], info_b))
        record = merged.derived_info["Course"]
        assert record.source == ClassRef("Course")
        assert record.visible_attrs == ("c#", "title")

    def test_reconcile_none_attrs_absorbs_subset(self):
        ip = IntensionalPattern([ClassRef("A")])
        info_a = {"A": DerivedClassInfo(ClassRef("A", "X"), ClassRef("A"),
                                        None)}
        info_b = {"A": DerivedClassInfo(ClassRef("A", "X"), ClassRef("A"),
                                        ("x",))}
        merged = Subdatabase("X", ip, [], info_a).merge(
            Subdatabase("X", ip, [], info_b))
        assert merged.derived_info["A"].visible_attrs is None

    def test_edges_dedup_on_merge(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")],
                                [Edge(0, 1, "derived", "X")])
        merged = Subdatabase("X", ip, []).merge(Subdatabase("X", ip, []))
        assert len(merged.intension.edges) == 1


class TestPresentation:
    def test_sorted_rows_nulls_last(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        sub = Subdatabase("X", ip, [P(None, 2), P(1, 2)])
        rows = sub.sorted_rows()
        assert rows[0][0] is not None

    def test_describe_mentions_induced_links(self, sdb):
        ip = IntensionalPattern([ClassRef("A")])
        info = {"A": DerivedClassInfo(ClassRef("A", "X"), ClassRef("A"))}
        sub = Subdatabase("X", ip, [], info)
        assert "G(induced)" in sub.describe()

    def test_normalized(self):
        ip = IntensionalPattern([ClassRef("A"), ClassRef("B")])
        sub = Subdatabase("X", ip, [P(1, 2), P(1, None)])
        assert sub.normalized().patterns == {P(1, 2)}
