"""Live-subscription unit and property tests.

Covers the :class:`~repro.oql.subscribe.SubscriptionManager` delivery
contract — duplicate-free deltas under strictly increasing sequence
numbers, silence after unsubscribe, RESYNC-after-overflow convergence,
budget-trip recovery, terminal ``closed`` frames, empty-delta
suppression — plus the listener-lifecycle regressions in
:class:`~repro.model.database.Database` and
:class:`~repro.rules.engine.RuleEngine` (removal during notification)
that the subscription teardown paths rely on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import OQLSemanticError, UnknownSubdatabaseError
from repro.model.database import Database
from repro.model.dclass import INTEGER
from repro.model.schema import Schema
from repro.oql.parser import parse_query
from repro.oql.subscribe import SubscriptionManager, canonical_rows
from repro.rules.engine import RuleEngine
from repro.university import build_paper_database

pytestmark = pytest.mark.subscribe


def chain_db(size: int = 3):
    """A -ab-> B plus a self-association A -aa-> A (for loop shapes)."""
    schema = Schema()
    for cls in "AB":
        schema.add_eclass(cls)
        schema.add_attribute(cls, "n", INTEGER)
    schema.add_association("A", "B", name="ab")
    schema.add_association("A", "A", name="aa")
    db = Database(schema)
    objs = {}
    for cls in "AB":
        for i in range(size):
            objs[f"{cls.lower()}{i}"] = db.insert(
                cls, f"{cls.lower()}{i}", n=i)
    return db, objs


def scratch_pairs(engine):
    """The A * B pairs by direct evaluation (canonical form)."""
    query = parse_query("context A * B")
    source = engine.evaluator.evaluate(query.context, query.where)
    return {tuple(v.value for v in p.values) for p in source.patterns}


def fold(state, frames):
    """Apply drained frames; asserts the per-frame delta invariants."""
    last_seq = -1  # the snapshot is seq 0; deltas start at 1
    for frame in frames:
        assert frame.seq > last_seq, "seq not strictly increasing"
        last_seq = frame.seq
        if frame.kind in ("resync", "snapshot"):
            state = set(frame.added)
        elif frame.kind == "delta":
            added, removed = set(frame.added), set(frame.removed)
            assert not added & state, "delta re-added a present row"
            assert removed <= state, "delta removed an absent row"
            assert not added & removed, "row both added and removed"
            state = (state - removed) | added
        else:
            state = None
    return state


# Op codes for the hypothesis sweep: (kind, owner index, target index).
OPS = st.lists(
    st.tuples(st.sampled_from(["link", "unlink", "newa", "newb"]),
              st.integers(0, 5), st.integers(0, 5)),
    min_size=1, max_size=25)


def apply_ops(db, ops, counter=[0]):
    """Replay an op list, ignoring constraint noise (double links,
    missing links); returns how many ops actually mutated."""
    from repro.errors import ReproError
    applied = 0
    a_pool = sorted(db.extent("A"))
    b_pool = sorted(db.extent("B"))
    for kind, i, j in ops:
        try:
            if kind == "link":
                db.associate(a_pool[i % len(a_pool)], "ab",
                             b_pool[j % len(b_pool)])
            elif kind == "unlink":
                db.dissociate(a_pool[i % len(a_pool)], "ab",
                              b_pool[j % len(b_pool)])
            elif kind == "newa":
                counter[0] += 1
                a_pool.append(db.insert("A", f"pa{counter[0]}", n=i))
            else:
                counter[0] += 1
                b_pool.append(db.insert("B", f"pb{counter[0]}", n=j))
            applied += 1
        except ReproError:
            continue
    return applied


class TestDeliveryProperties:
    """Hypothesis sweep of the delivery contract on a small schema."""

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=OPS)
    def test_deltas_duplicate_free_and_ordered(self, ops):
        db, _ = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        sub = manager.subscribe("context A * B")
        state = fold(set(), [sub.initial])
        apply_ops(db, ops)
        state = fold(state, sub.poll())
        assert state == scratch_pairs(manager.engine)
        manager.unsubscribe(sub.id)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=OPS)
    def test_unsubscribe_then_write_delivers_nothing(self, ops):
        db, _ = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        baseline = db.listener_count()
        sub = manager.subscribe("context A * B")
        assert manager.unsubscribe(sub.id)
        apply_ops(db, ops)
        assert sub.poll() == [] and sub.pending() == 0
        assert sub.counters["events_seen"] == 0
        assert db.listener_count() == baseline

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=OPS)
    def test_resync_after_overflow_converges(self, ops):
        """A consumer that never polls mid-stream: with a 1-frame
        outbox the backlog degrades to RESYNC frames, and the final
        drain still converges to the scratch result."""
        db, _ = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        sub = manager.subscribe("context A * B", max_pending=1)
        state = fold(set(), [sub.initial])
        apply_ops(db, ops)
        frames = sub.poll()
        assert len(frames) <= 1, "outbox exceeded max_pending"
        if sub.counters["overflows"]:
            assert frames and frames[-1].kind == "resync"
        state = fold(state, frames)
        assert state == scratch_pairs(manager.engine)
        manager.unsubscribe(sub.id)


class TestSubscriptionSemantics:
    def test_operation_queries_rejected(self):
        db, _ = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        with pytest.raises(OQLSemanticError):
            manager.subscribe("context A display")
        assert manager.active_count == 0

    def test_relevant_write_with_unchanged_result_emits_nothing(self):
        """A write that moves the vector but not the rows (a new A with
        no links) advances silently: no frame, one empty delta."""
        db, objs = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        db.associate(objs["a0"], "ab", objs["b0"])
        sub = manager.subscribe("context A * B")
        db.insert("A", "lonely", n=99)
        assert sub.counters["wakeups"] == 1
        assert sub.counters["empty_deltas"] == 1
        assert sub.pending() == 0
        manager.unsubscribe(sub.id)

    def test_budget_trip_marks_stale_then_next_event_resyncs(self):
        """Growth past ``max_rows`` trips the budget (stale, no frame
        with partial rows); shrinking back lets the next relevant event
        recover with a full RESYNC that matches scratch."""
        db, objs = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        db.associate(objs["a0"], "ab", objs["b0"])
        # The aggregation condition forces the scratch path, whose full
        # re-evaluation is what the budget meters.
        sub = manager.subscribe("context A * B where COUNT(B by A) > 0",
                                budget_limits={"max_rows": 2})
        assert not sub.incremental
        assert sub.initial.added == ((objs["a0"].oid.value,
                                      objs["b0"].oid.value),)
        db.associate(objs["a0"], "ab", objs["b1"])  # 2 pairs: fits
        assert sub.counters["budget_trips"] == 0
        db.associate(objs["a0"], "ab", objs["b2"])  # 3 pairs: trips
        assert sub.counters["budget_trips"] == 1
        assert sub.stale
        kinds = [f.kind for f in sub.poll()]
        assert kinds == ["delta"], "tripped event must emit no frame"
        db.dissociate(objs["a0"], "ab", objs["b2"])  # back to 2: fits
        db.dissociate(objs["a0"], "ab", objs["b1"])
        frames = sub.poll()
        assert [f.kind for f in frames] == ["resync", "delta"]
        assert not sub.stale
        state = fold(set(), frames)
        assert state == scratch_pairs(manager.engine)
        manager.unsubscribe(sub.id)

    def test_manual_resync_recovers_without_a_write(self):
        db, objs = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        sub = manager.subscribe("context A * B")
        sub.stale = True  # as if a budget trip had happened
        assert manager.resync(sub.id)
        frames = sub.poll()
        assert [f.kind for f in frames] == ["resync"]
        assert not sub.stale
        manager.unsubscribe(sub.id)

    def test_rule_removal_closes_derived_subscription(self):
        """Removing a rule a subscription reads produces one terminal
        ``closed`` frame and detaches everything."""
        engine = RuleEngine(build_paper_database().db)
        baseline = engine.db.listener_count()
        engine.add_rule(
            "if context Teacher * Section * Course "
            "then Teacher_course (Teacher, Course)", label="R1")
        manager = SubscriptionManager(engine)
        sub = manager.subscribe(
            "context Teacher_course:Teacher * Teacher_course:Course")
        assert sub.has_derived
        assert sub.initial.added  # non-vacuous
        engine.remove_rule("R1")
        frames = sub.poll()
        assert frames[-1].kind == "closed"
        assert "UnknownSubdatabaseError" in frames[-1].error
        assert not sub.active
        assert manager.active_count == 0
        assert engine.db.listener_count() == baseline

    def test_derived_subscription_wakes_on_base_class_write(self):
        """Derived references resolve to their transitive base classes:
        a teaches link (Teacher/Section) must wake a Teacher_course
        subscriber even though no Teacher_course write ever happens."""
        data = build_paper_database()
        engine = RuleEngine(data.db)
        engine.add_rule(
            "if context Teacher * Section * Course "
            "then Teacher_course (Teacher, Course)", label="R1")
        manager = SubscriptionManager(engine)
        sub = manager.subscribe(
            "context Teacher_course:Teacher * Teacher_course:Course")
        assert sub.classes == ("Course", "Section", "Teacher")
        teacher = sorted(data.db.extent("Teacher"))[0]
        section = sorted(data.db.extent("Section"))[-1]
        data.db.associate(teacher, "teaches", section)
        assert sub.counters["wakeups"] == 1
        manager.unsubscribe(sub.id)

    def test_snapshot_consistency_counts_every_event_once(self):
        """initial ⊕ deltas covers each write exactly once even when
        writes surround the subscribe call."""
        db, objs = chain_db()
        manager = SubscriptionManager(RuleEngine(db))
        db.associate(objs["a0"], "ab", objs["b0"])  # before subscribe
        sub = manager.subscribe("context A * B")
        db.associate(objs["a1"], "ab", objs["b1"])  # after subscribe
        state = fold(set(), [sub.initial] + sub.poll())
        assert state == {(objs["a0"].oid.value, objs["b0"].oid.value),
                         (objs["a1"].oid.value, objs["b1"].oid.value)}
        assert sub.initial.added == canonical_rows(
            [(objs["a0"].oid.value, objs["b0"].oid.value)])
        manager.unsubscribe(sub.id)


class TestListenerLifecycle:
    """Satellite regressions: removal during notification must be safe
    and must not deliver the current event to the removed listener."""

    def test_listener_removing_another_skips_it_for_this_event(self):
        db, objs = chain_db()
        calls = []
        removed = []

        def second(event):
            calls.append("second")

        def first(event):
            calls.append("first")
            if not removed:
                db.remove_listener(second)
                removed.append(True)

        db.add_listener(first)
        db.add_listener(second)
        db.insert("A", "x1", n=1)
        assert calls == ["first"], "removed listener still notified"
        db.insert("A", "x2", n=2)
        assert calls == ["first", "first"]

    def test_listener_removing_itself_is_safe(self):
        db, _ = chain_db()
        calls = []

        def once(event):
            calls.append("once")
            db.remove_listener(once)

        db.add_listener(once)
        before = db.listener_count()
        db.insert("A", "y1", n=1)
        db.insert("A", "y2", n=2)
        assert calls == ["once"]
        assert db.listener_count() == before - 1

    def test_listeners_fire_in_registration_order(self):
        db, _ = chain_db()
        order = []
        db.add_listener(lambda e: order.append(1))
        db.add_listener(lambda e: order.append(2))
        db.add_listener(lambda e: order.append(3))
        db.insert("A", "z", n=0)
        assert order == [1, 2, 3]

    def test_rule_listener_removal_during_notification(self):
        db, _ = chain_db()
        engine = RuleEngine(db)
        calls = []

        removed = []

        def second(action, rule, mode):
            calls.append("second")

        def first(action, rule, mode):
            calls.append("first")
            if not removed:
                engine.remove_rule_listener(second)
                removed.append(True)

        engine.add_rule_listener(first)
        engine.add_rule_listener(second)
        engine.add_rule("if context A * B then AB (A, B)", label="T")
        assert calls == ["first"]
        engine.remove_rule("T")
        assert calls == ["first", "first"]

    def test_manager_attach_detach_is_paired(self):
        """One db listener + one rule listener while any subscription
        is live; none when idle."""
        db, _ = chain_db()
        engine = RuleEngine(db)
        baseline = db.listener_count()
        manager = SubscriptionManager(engine)
        assert db.listener_count() == baseline
        first = manager.subscribe("context A * B")
        second = manager.subscribe("context A")
        assert db.listener_count() == baseline + 1  # shared listener
        manager.unsubscribe(first.id)
        assert db.listener_count() == baseline + 1
        manager.unsubscribe(second.id)
        assert db.listener_count() == baseline
        assert engine._rule_listeners == []
