"""The observability layer: span mechanics, exporters, the null-tracer
contract, and Hypothesis-driven well-formedness properties over random
query and rule workloads.

The property suite reuses the differential harness's seeded query
generator (:mod:`tests.test_differential`) so the trace shapes exercised
here match the workloads the parity tier replays.
"""

import json
import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QueryProcessor, RuleEngine, Universe, obs
from repro.errors import ReproError
from repro.obs import (
    CountingTracer,
    TraceRecorder,
    Tracer,
    chrome_trace,
    render_tree,
    save_chrome_trace,
    to_chrome_events,
)
from repro.oql.budget import BudgetExceeded, QueryBudget
from repro.university.generator import GeneratorConfig, generate_university
from tests.test_differential import _random_spec

#: Slack for float microsecond arithmetic when checking containment.
EPS_US = 5.0

DB = generate_university(GeneratorConfig(), seed=11).db


@pytest.fixture(autouse=True)
def _no_tracer_leak():
    yield
    obs.uninstall()


def all_spans(root):
    return list(root.walk())


def assert_well_formed(root):
    """Every span closed exactly once, ids unique, one trace id, and
    children strictly nested inside their parents."""
    seen = set()
    for span in root.walk():
        assert span.closed, f"span {span.name!r} left open"
        assert span.span_id not in seen, "duplicate span id"
        seen.add(span.span_id)
        assert span.trace_id == root.trace_id
        end = span.start_us + span.wall_ms * 1000.0
        for child in span.children:
            assert child.parent_id == span.span_id
            child_end = child.start_us + child.wall_ms * 1000.0
            assert child.start_us >= span.start_us - EPS_US, (
                f"{child.name} starts before parent {span.name}")
            assert child_end <= end + EPS_US, (
                f"{child.name} ends after parent {span.name}")


# ---------------------------------------------------------------------------
# Span mechanics.
# ---------------------------------------------------------------------------


class TestTracerMechanics:
    def test_nested_spans_and_recording(self):
        tracer = Tracer()
        outer = tracer.start("outer", kind="demo")
        inner = tracer.start("inner")
        inner.add("rows_out", 7)
        tracer.finish(inner)
        tracer.finish(outer)
        root = tracer.recorder.last()
        assert root is outer
        assert root.parent_id is None
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].counters["rows_out"] == 7
        assert root.attrs["kind"] == "demo"
        assert_well_formed(root)

    def test_implicit_parent_is_thread_local(self):
        tracer = Tracer()
        root = tracer.start("root")
        captured = {}

        def worker():
            # No stack on this thread: a fresh start() makes a new root.
            span = tracer.start("isolated")
            captured["trace"] = span.trace_id
            tracer.finish(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.finish(root)
        assert captured["trace"] != root.trace_id
        assert len(tracer.recorder) == 2

    def test_explicit_parent_stitches_across_threads(self):
        tracer = Tracer()
        root = tracer.start("root")
        parent = tracer.current_span()
        assert parent is root

        def worker(index):
            span = tracer.start("child", parent=parent, partition=index)
            tracer.finish(span)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.finish(root)
        assert sorted(c.attrs["partition"] for c in root.children) == \
            [0, 1, 2, 3]
        assert root.children[0].trace_id == root.trace_id
        assert_well_formed(root)

    def test_double_finish_raises(self):
        tracer = Tracer()
        span = tracer.start("once")
        tracer.finish(span)
        with pytest.raises(RuntimeError, match="finished twice"):
            tracer.finish(span)

    def test_abandoned_children_are_swept(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.finish(outer)  # sweeps the still-open inner span
        assert inner.closed
        assert inner.status == "aborted"
        tracer.finish(inner)  # late finish of a swept span is a no-op
        root = tracer.recorder.last()
        assert root is outer
        assert_well_formed(root)

    def test_error_status_from_exception(self):
        tracer = Tracer()
        span = tracer.start("failing")
        try:
            raise ValueError("boom")
        except ValueError:
            tracer.finish(span)
        assert span.status == "error:ValueError"

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(max_traces=3)
        ids = []
        for _ in range(5):
            span = tracer.start("q")
            ids.append(span.trace_id)
            tracer.finish(span)
        assert len(tracer.recorder) == 3
        assert tracer.recorder.get(ids[0]) is None
        assert tracer.recorder.get(ids[-1]) is not None
        assert [r.trace_id for r in tracer.recorder.traces()] == ids[2:]

    def test_recorder_last_get_clear(self):
        recorder = TraceRecorder()
        assert recorder.last() is None
        assert recorder.get(1) is None
        tracer = Tracer()
        span = tracer.start("q")
        tracer.finish(span)
        assert tracer.recorder.last() is span
        assert tracer.recorder.get(span.trace_id) is span
        tracer.recorder.clear()
        assert len(tracer.recorder) == 0

    def test_counting_tracer_is_inert(self):
        tracer = CountingTracer()
        a = tracer.start("x", attr=1)
        b = tracer.start("y")
        a.add("rows_out", 3)
        a.set("k", "v")
        assert a.trace_id is None
        tracer.finish(a)
        tracer.finish(b)
        assert tracer.current_span() is None
        assert tracer.starts == 2

    def test_install_uninstall(self):
        assert obs.TRACER is None
        tracer = obs.install()
        assert obs.TRACER is tracer
        assert isinstance(tracer, Tracer)
        custom = Tracer(max_traces=2)
        assert obs.install(custom) is custom
        assert obs.TRACER is custom
        obs.uninstall()
        assert obs.TRACER is None
        assert obs.last_trace() is None


# ---------------------------------------------------------------------------
# Exporters.
# ---------------------------------------------------------------------------


class TestExport:
    def _sample_root(self):
        tracer = Tracer()
        root = tracer.start("query", result="r")
        child = tracer.start("join-step", slot="Course")
        child.add("rows_out", 4)
        tracer.finish(child)
        tracer.finish(root)
        return root

    def test_chrome_events_shape(self):
        root = self._sample_root()
        events = to_chrome_events([root])
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["tid"] == root.thread_id
            assert event["dur"] >= 0
            assert event["args"]["trace_id"] == root.trace_id
        child = next(e for e in events if e["name"] == "join-step")
        assert child["args"]["rows_out"] == 4
        assert child["args"]["slot"] == "Course"

    def test_chrome_trace_document_and_save(self, tmp_path):
        root = self._sample_root()
        doc = chrome_trace([root])
        assert doc["displayTimeUnit"] == "ms"
        path = save_chrome_trace(tmp_path / "trace.json", [root])
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))

    def test_render_tree(self):
        root = self._sample_root()
        text = render_tree(root)
        assert text.startswith(f"trace {root.trace_id}: query")
        assert "└─ join-step" in text
        assert "rows_out=4" in text
        assert "slot=Course" in text


# ---------------------------------------------------------------------------
# End-to-end instrumentation.
# ---------------------------------------------------------------------------


class TestInstrumentation:
    def _processor(self, **kwargs):
        return QueryProcessor(Universe(DB), compact=True, **kwargs)

    def test_metrics_carry_trace_id(self):
        processor = self._processor()
        result = processor.execute("context Student * Section")
        assert result.metrics.trace_id is None  # tracing off
        tracer = obs.install()
        result = processor.execute("context Student * Section")
        assert result.metrics.trace_id is not None
        root = tracer.recorder.get(result.metrics.trace_id)
        assert root is not None
        assert root.name == "query"
        assert root.counters["rows_out"] == result.metrics.patterns_out
        assert_well_formed(root)

    def test_query_trace_has_plan_and_join_steps(self):
        tracer = obs.install()
        self._processor().execute("context Student * Section * Course")
        root = tracer.recorder.last()
        names = [span.name for span in all_spans(root)]
        assert names.count("match-range") == 1
        assert names.count("join-step") == 2
        assert "plan" in names

    def test_loop_trace_has_levels(self):
        tracer = obs.install()
        self._processor().execute("context Course * Course_1 ^*")
        root = tracer.recorder.last()
        levels = [span for span in all_spans(root)
                  if span.name == "loop-level"]
        assert levels
        first = levels[0].attrs["level"]
        assert [span.attrs["level"] for span in levels] == \
            list(range(first, first + len(levels)))

    def test_explain_trace_id(self):
        engine = RuleEngine(DB)
        explanation = engine.explain("context Student * Section")
        assert explanation.trace_id is None
        tracer = obs.install()
        explanation = engine.explain("context Student * Section")
        assert explanation.trace_id is not None
        assert tracer.recorder.get(explanation.trace_id).name == "explain"

    def test_rule_derivation_cascade_spans(self):
        engine = RuleEngine(DB)
        engine.add_rule("if context Student * Section "
                        "then Enrolled (Student, Section)")
        engine.add_rule("if context Enrolled:Section * Course "
                        "then Offered (Section, Course)")
        tracer = obs.install()
        engine.derive("Offered")
        root = tracer.recorder.last()
        derives = [span for span in all_spans(root)
                   if span.name == "derive"]
        assert [span.attrs["target"] for span in derives] == \
            ["Offered", "Enrolled"]
        assert any(span.name == "rule-apply"
                   for span in all_spans(root))
        assert_well_formed(root)

    def test_budget_exceeded_records_partial_trace(self):
        processor = self._processor()
        tracer = obs.install()
        budget = QueryBudget(max_rows=1)
        with pytest.raises(BudgetExceeded) as info:
            processor.execute("context Student * Section * Course",
                              budget=budget)
        exc = info.value
        assert exc.trace_id is not None
        root = tracer.recorder.get(exc.trace_id)
        assert root is not None
        assert_well_formed(root)
        query = next(span for span in all_spans(root)
                     if span.name == "query")
        assert query.status == "error:BudgetExceeded"
        assert query.attrs["budget_verdict"] == "max_rows"
        assert query.attrs["budget_checks"] >= 1


# ---------------------------------------------------------------------------
# Hypothesis properties over the differential generator.
# ---------------------------------------------------------------------------


SHARED_PROCESSOR = None


def _shared_processor():
    global SHARED_PROCESSOR
    if SHARED_PROCESSOR is None:
        SHARED_PROCESSOR = QueryProcessor(Universe(DB), compact=True)
    return SHARED_PROCESSOR


class TestTraceProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_every_query_trace_is_well_formed(self, seed):
        spec = _random_spec(random.Random(seed))
        processor = _shared_processor()
        tracer = Tracer()
        obs.install(tracer)
        try:
            try:
                result = processor.execute(spec.text())
            except ReproError:
                result = None
        finally:
            obs.uninstall()
        root = tracer.recorder.last()
        assert root is not None, "no trace recorded"
        assert_well_formed(root)
        query_spans = [span for span in all_spans(root)
                       if span.name == "query"]
        assert len(query_spans) == 1
        if result is not None:
            assert query_spans[0].counters["rows_out"] == \
                len(result.subdatabase)
            assert result.metrics.trace_id == root.trace_id

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_budget_trip_leaves_no_orphan_spans(self, seed):
        rng = random.Random(seed)
        spec = _random_spec(rng)
        processor = _shared_processor()
        tracer = Tracer()
        obs.install(tracer)
        try:
            try:
                processor.execute(spec.text(),
                                  budget=QueryBudget(max_rows=rng
                                                     .randint(1, 50)))
            except BudgetExceeded as exc:
                assert exc.trace_id is not None
                root = tracer.recorder.get(exc.trace_id)
                assert root is not None
            except ReproError:
                pass
        finally:
            obs.uninstall()
        for root in tracer.recorder.traces():
            assert_well_formed(root)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_rule_workload_traces_are_well_formed(self, seed):
        spec = _random_spec(random.Random(seed))
        if len(spec.chain) < 2 or spec.where or spec.loop:
            return
        engine = RuleEngine(DB)
        rule_text = (f"if context {spec.text()[len('context '):]} "
                     f"then Target ({spec.chain[0]}, {spec.chain[-1]})")
        tracer = Tracer()
        obs.install(tracer)
        try:
            try:
                engine.add_rule(rule_text)
                engine.derive("Target")
            except ReproError:
                return
        finally:
            obs.uninstall()
        root = tracer.recorder.last()
        assert root is not None
        assert_well_formed(root)
        names = [span.name for span in all_spans(root)]
        assert names[0] == "derive"
        assert "rule-apply" in names
        assert "query" in names
