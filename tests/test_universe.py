"""Unit tests for the universe: extents, attribute visibility along
induced-generalization chains, cross-subdatabase edge resolution, and the
backward-chaining provider hook."""

import pytest

from repro.errors import (
    UnknownAttributeError,
    UnknownSubdatabaseError,
)
from repro.model.oid import OID
from repro.subdb.derived import DerivedClassInfo
from repro.subdb.intension import Edge, IntensionalPattern
from repro.subdb.pattern import ExtensionalPattern
from repro.subdb.refs import ClassRef
from repro.subdb.subdatabase import Subdatabase
from repro.subdb.universe import Universe
from repro.university import build_paper_database


@pytest.fixture
def paper():
    return build_paper_database()


@pytest.fixture
def universe(paper):
    return Universe(paper.db)


def make_subdb(name, slots, rows, info=None, edges=()):
    ip = IntensionalPattern([ClassRef.parse(s) for s in slots], edges)
    return Subdatabase(name, ip,
                       [ExtensionalPattern(row) for row in rows], info)


class TestRegistry:
    def test_register_and_get(self, universe, paper):
        sub = make_subdb("X", ["Teacher"], [[paper.oid("t1")]])
        universe.register(sub)
        assert universe.get_subdb("X") is sub
        assert universe.has_subdb("X")
        assert "X" in universe.subdb_names

    def test_unregister(self, universe, paper):
        universe.register(make_subdb("X", ["Teacher"],
                                     [[paper.oid("t1")]]))
        universe.unregister("X")
        assert not universe.has_subdb("X")

    def test_unknown_without_provider(self, universe):
        with pytest.raises(UnknownSubdatabaseError):
            universe.get_subdb("Nope")

    def test_provider_invoked_for_missing(self, universe, paper):
        sub = make_subdb("Lazy", ["Teacher"], [[paper.oid("t1")]])
        calls = []

        def provider(name):
            calls.append(name)
            return sub if name == "Lazy" else None

        universe.provider = provider
        assert universe.get_subdb("Lazy") is sub
        assert calls == ["Lazy"]
        with pytest.raises(UnknownSubdatabaseError):
            universe.get_subdb("Other")

    def test_materialized_wins_over_provider(self, universe, paper):
        sub = make_subdb("X", ["Teacher"], [[paper.oid("t1")]])
        universe.register(sub)
        universe.provider = lambda name: pytest.fail("must not be called")
        assert universe.get_subdb("X") is sub


class TestExtents:
    def test_base_extent_includes_subclasses(self, universe, paper):
        extent = universe.extent(ClassRef("Teacher"))
        assert paper.oid("ta1") in extent

    def test_alias_ranges_over_same_extent(self, universe):
        assert universe.extent(ClassRef("Grad", None, 2)) == \
            universe.extent(ClassRef("Grad"))

    def test_derived_extent(self, universe, paper):
        universe.register(make_subdb(
            "X", ["Teacher"], [[paper.oid("t1")], [paper.oid("t2")]]))
        assert universe.extent(ClassRef("Teacher", "X")) == {
            paper.oid("t1"), paper.oid("t2")}


class TestAttributeVisibility:
    def test_base_attribute(self, universe, paper):
        value = universe.attr_value(ClassRef("Teacher"), paper.oid("t1"),
                                    "name")
        assert value == "Smith"

    def test_derived_all_attributes_by_default(self, universe, paper):
        info = {"Teacher": DerivedClassInfo(
            ClassRef("Teacher", "X"), ClassRef("Teacher"), None)}
        universe.register(make_subdb("X", ["Teacher"],
                                     [[paper.oid("t1")]], info))
        assert universe.attr_value(ClassRef("Teacher", "X"),
                                   paper.oid("t1"), "name") == "Smith"

    def test_attribute_subsetting_blocks_hidden(self, universe, paper):
        # The paper: Teacher_course (Teacher [SS#, degree], Course) makes
        # 'name' inaccessible from Teacher_course:Teacher.
        info = {"Teacher": DerivedClassInfo(
            ClassRef("Teacher", "X"), ClassRef("Teacher"),
            ("SS#", "degree"))}
        universe.register(make_subdb("X", ["Teacher"],
                                     [[paper.oid("t1")]], info))
        ref = ClassRef("Teacher", "X")
        assert universe.attr_value(ref, paper.oid("t1"),
                                   "SS#") == "100-00-0001"
        with pytest.raises(UnknownAttributeError):
            universe.attr_value(ref, paper.oid("t1"), "name")

    def test_subsetting_composes_along_chain(self, universe, paper):
        # X restricts to (SS#, degree); Y derives from X restricting to
        # (SS#,): only SS# survives.
        info_x = {"Teacher": DerivedClassInfo(
            ClassRef("Teacher", "X"), ClassRef("Teacher"),
            ("SS#", "degree"))}
        info_y = {"Teacher": DerivedClassInfo(
            ClassRef("Teacher", "Y"), ClassRef("Teacher", "X"), ("SS#",))}
        universe.register(make_subdb("X", ["Teacher"],
                                     [[paper.oid("t1")]], info_x))
        universe.register(make_subdb("Y", ["Teacher"],
                                     [[paper.oid("t1")]], info_y))
        assert universe.visible_attributes(ClassRef("Teacher", "Y")) == \
            ("SS#",)

    def test_visible_attributes_base(self, universe):
        assert universe.visible_attributes(ClassRef("Section")) == \
            ("section#", "textbook")

    def test_unknown_base_attribute(self, universe, paper):
        with pytest.raises(UnknownAttributeError):
            universe.attr_value(ClassRef("Teacher"), paper.oid("t1"),
                                "salary")

    def test_slot_without_info_falls_back_to_base(self, universe, paper):
        universe.register(make_subdb("X", ["Teacher"],
                                     [[paper.oid("t1")]]))
        assert universe.attr_value(ClassRef("Teacher", "X"),
                                   paper.oid("t1"), "name") == "Smith"


class TestEdgeResolution:
    def test_base_edge(self, universe):
        edge = universe.resolve_edge(ClassRef("Teacher"),
                                     ClassRef("Section"))
        assert edge.kind == "base"
        assert edge.resolved.link.name == "teaches"

    def test_identity_edge(self, universe):
        edge = universe.resolve_edge(ClassRef("TA"), ClassRef("Grad"))
        assert edge.kind == "identity"

    def test_same_subdb_derived_edge(self, universe, paper):
        sub = make_subdb("X", ["Teacher", "Course"],
                         [[paper.oid("t1"), paper.oid("c1")]],
                         edges=[Edge(0, 1, "derived", "X")])
        universe.register(sub)
        edge = universe.resolve_edge(ClassRef("Teacher", "X"),
                                     ClassRef("Course", "X"))
        assert edge.kind == "subdb"
        assert (edge.i, edge.j) == (0, 1)

    def test_cross_subdb_falls_back_to_base(self, universe, paper):
        # Department * Suggest_offer:Course resolves through the base
        # schema thanks to induced generalization.
        universe.register(make_subdb("SO", ["Course"],
                                     [[paper.oid("c1")]]))
        edge = universe.resolve_edge(ClassRef("Department"),
                                     ClassRef("Course", "SO"))
        assert edge.kind == "base"
        assert edge.resolved.link.name == "department"

    def test_same_subdb_without_edge_uses_base(self, universe, paper):
        sub = make_subdb("X", ["Teacher", "Section"],
                         [[paper.oid("t1"), paper.oid("s2")]])
        universe.register(sub)
        edge = universe.resolve_edge(ClassRef("Teacher", "X"),
                                     ClassRef("Section", "X"))
        assert edge.kind == "base"


class TestEdgeNeighbors:
    def test_base_neighbors_forward_and_back(self, universe, paper):
        edge = universe.resolve_edge(ClassRef("Teacher"),
                                     ClassRef("Section"))
        assert universe.edge_neighbors(paper.oid("t1"), edge) == {
            paper.oid("s2")}
        assert universe.edge_neighbors(paper.oid("s2"), edge,
                                       forward=False) == {paper.oid("t1")}

    def test_identity_neighbors(self, universe, paper):
        edge = universe.resolve_edge(ClassRef("TA"), ClassRef("Grad"))
        assert universe.edge_neighbors(paper.oid("ta1"), edge) == {
            paper.oid("ta1")}

    def test_subdb_neighbors_and_cache_invalidation(self, universe, paper):
        sub = make_subdb("X", ["Teacher", "Course"],
                         [[paper.oid("t1"), paper.oid("c1")]],
                         edges=[Edge(0, 1, "derived", "X")])
        universe.register(sub)
        edge = universe.resolve_edge(ClassRef("Teacher", "X"),
                                     ClassRef("Course", "X"))
        assert universe.edge_neighbors(paper.oid("t1"), edge) == {
            paper.oid("c1")}
        # Re-register with different patterns: the cache must refresh.
        sub2 = make_subdb("X", ["Teacher", "Course"],
                          [[paper.oid("t2"), paper.oid("c2")]],
                          edges=[Edge(0, 1, "derived", "X")])
        universe.register(sub2)
        assert universe.edge_neighbors(paper.oid("t1"), edge) == set()
        assert universe.edge_neighbors(paper.oid("t2"), edge) == {
            paper.oid("c2")}
