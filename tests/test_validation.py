"""Unit tests for the whole-database constraint audit."""

import pytest

from repro.model.database import Database
from repro.model.dclass import STRING
from repro.model.schema import Schema
from repro.model.validation import check_database


@pytest.fixture
def schema():
    s = Schema()
    s.add_eclass("A")
    s.add_eclass("B")
    s.add_attribute("A", "name", STRING, required=True)
    s.add_association("A", "B", name="partner", many=False, required=True)
    return s


class TestAudit:
    def test_clean_database_has_no_violations(self, schema):
        db = Database(schema)
        a = db.insert("A", name="ok")
        b = db.insert("B")
        db.associate(a, "partner", b)
        assert check_database(db) == []

    def test_missing_required_attribute(self, schema):
        db = Database(schema)
        a = db.insert("A")
        b = db.insert("B")
        db.associate(a, "partner", b)
        violations = check_database(db)
        assert len(violations) == 1
        assert violations[0].kind == "non_null"
        assert violations[0].link_name == "name"

    def test_missing_required_association(self, schema):
        db = Database(schema)
        db.insert("A", name="x")
        violations = check_database(db)
        kinds = {(v.kind, v.link_name) for v in violations}
        assert ("non_null", "partner") in kinds

    def test_cardinality_violation_detected(self, schema):
        # Bypass associate()'s insert-time check by writing the index
        # directly (simulating a bulk load).
        db = Database(schema)
        a = db.insert("A", name="x")
        b1 = db.insert("B")
        b2 = db.insert("B")
        link = next(l for l in schema.aggregations()
                    if l.name == "partner")
        db._link(link.key, a.oid, b1.oid)
        db._link(link.key, a.oid, b2.oid)
        violations = check_database(db)
        assert any(v.kind == "cardinality" for v in violations)

    def test_violation_str_is_informative(self, schema):
        db = Database(schema)
        db.insert("A", name="x")
        violation = check_database(db)[0]
        assert "partner" in str(violation)

    def test_paper_database_violates_waived_constraints_only_if_declared(self):
        # The university schema deliberately declares no required links,
        # mirroring the paper's waived constraints; its data audits clean.
        from repro.university import build_paper_database
        data = build_paper_database()
        assert check_database(data.db) == []
