"""Tests for the DOT renderings."""

import pytest

from repro.rules.engine import RuleEngine
from repro.university import build_paper_database, build_sdb
from repro.viz import extension_to_dot, intension_to_dot, schema_to_dot


@pytest.fixture
def data():
    return build_paper_database()


class TestSchemaDot:
    def test_valid_digraph_structure(self, data):
        dot = schema_to_dot(data.db.schema)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_classes_and_links_present(self, data):
        dot = schema_to_dot(data.db.schema)
        assert '"Teacher" [shape=box]' in dot
        assert "A:teaches[*]" in dot
        assert 'label="G"' in dot

    def test_dclasses_rendered_as_ellipses(self, data):
        dot = schema_to_dot(data.db.schema)
        assert "shape=ellipse" in dot

    def test_composition_gets_diamond(self):
        from repro.model.schema import Schema
        schema = Schema()
        schema.add_eclass("Whole")
        schema.add_eclass("Part")
        schema.add_composition("Whole", "Part")
        dot = schema_to_dot(schema)
        assert "arrowhead=diamond" in dot
        assert "C:Part" in dot

    def test_quoting_of_special_names(self):
        from repro.model.schema import Schema
        from repro.model.dclass import STRING
        schema = Schema('with "quotes"')
        schema.add_eclass("A")
        schema.add_attribute("A", "x", STRING)
        dot = schema_to_dot(schema)
        assert '\\"quotes\\"' in dot


class TestIntensionDot:
    def test_sdb_intension(self, data):
        dot = intension_to_dot(build_sdb(data))
        assert '"Teacher" -> "Section"' in dot
        assert 'label="teaches"' in dot

    def test_derived_edges_dashed_and_induced_links_drawn(self, data):
        engine = RuleEngine(data.db)
        engine.add_rule("if context Teacher * Section * Course "
                        "then TC (Teacher, Course)")
        dot = intension_to_dot(engine.derive("TC"))
        assert "style=dashed" in dot
        assert "G (induced)" in dot


class TestExtensionDot:
    def test_figure_31b_objects_grouped(self, data):
        dot = extension_to_dot(build_sdb(data))
        assert 'subgraph "cluster_Teacher"' in dot
        assert 'label="t3"' in dot
        assert 'label="s4"' in dot

    def test_links_drawn_once(self, data):
        dot = extension_to_dot(build_sdb(data))
        # t2-s3 appears in two patterns (with c1 and c2): one edge.
        assert dot.count('"1:s3"') >= 1
        edge = '"0:t2" -> "1:s3"'
        assert dot.count(edge) == 1

    def test_null_components_skipped(self, data):
        dot = extension_to_dot(build_sdb(data))
        assert "None" not in dot
